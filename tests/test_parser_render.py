"""Tests for the relational-algebra text parser and the NLM renderer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.listmachine import run_deterministic, skeleton_of_run
from repro.listmachine.examples import tandem_compare_nlm
from repro.listmachine.render import (
    render_cell,
    render_configuration,
    render_run,
    render_skeleton,
)
from repro.queries.relational import (
    AttrEquals,
    AttrEqualsAttr,
    Database,
    Difference,
    NaturalJoin,
    Product,
    Projection,
    Relation,
    RelationRef,
    Rename,
    Selection,
    Union,
    evaluate,
    symmetric_difference_query,
)
from repro.queries.relational.parser import parse_algebra

WORDS = frozenset({"00", "01", "10", "11"})


class TestAlgebraParser:
    def test_relation_ref(self):
        assert parse_algebra("R1") == RelationRef("R1")

    def test_symmetric_difference_text(self):
        assert (
            parse_algebra("(R1 - R2) union (R2 - R1)")
            == symmetric_difference_query()
        )

    def test_unicode_spelling(self):
        assert (
            parse_algebra("(R1 − R2) ∪ (R2 − R1)") == symmetric_difference_query()
        )

    def test_select_constant(self):
        assert parse_algebra("select[a='01'] R") == Selection(
            AttrEquals("a", "01"), RelationRef("R")
        )

    def test_select_attribute(self):
        assert parse_algebra("σ[a=b] R") == Selection(
            AttrEqualsAttr("a", "b"), RelationRef("R")
        )

    def test_project(self):
        assert parse_algebra("project[a, b] R") == Projection(
            ("a", "b"), RelationRef("R")
        )
        assert parse_algebra("π[a] R") == Projection(("a",), RelationRef("R"))

    def test_rename(self):
        assert parse_algebra("rename[a -> b, c -> d] R") == Rename(
            (("a", "b"), ("c", "d")), RelationRef("R")
        )

    def test_product_and_join(self):
        assert parse_algebra("A x B") == Product(RelationRef("A"), RelationRef("B"))
        assert parse_algebra("A ⋈ B") == NaturalJoin(
            RelationRef("A"), RelationRef("B")
        )
        assert parse_algebra("A join B") == NaturalJoin(
            RelationRef("A"), RelationRef("B")
        )

    def test_precedence(self):
        # product binds tighter than difference binds tighter than union
        expr = parse_algebra("A union B - C x D")
        assert expr == Union(
            RelationRef("A"),
            Difference(
                RelationRef("B"), Product(RelationRef("C"), RelationRef("D"))
            ),
        )

    def test_nesting(self):
        expr = parse_algebra("π[a] ( σ[a='0'] (A union B) )")
        assert isinstance(expr, Projection)
        assert isinstance(expr.child, Selection)
        assert isinstance(expr.child.child, Union)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(",
            "A union",
            "select[a] R",
            "select[a='0'",
            "project[] R",
            "rename[a] R",
            "A B",
            "σ[a=''unterminated] R",
            "union A",
        ],
    )
    def test_rejects_garbage(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_algebra(bad)

    def test_parsed_query_evaluates(self):
        db = Database(
            {
                "R1": Relation.create(("v",), [("0",), ("1",)]),
                "R2": Relation.create(("v",), [("1",), ("0",)]),
            }
        )
        out = evaluate(parse_algebra("(R1 - R2) union (R2 - R1)"), db)
        assert out.is_empty


class TestRenderer:
    def _run(self):
        nlm = tandem_compare_nlm(WORDS, 2)
        return nlm, run_deterministic(nlm, ["01", "10", "10", "01"])

    def test_render_cell_initial(self):
        nlm, run = self._run()
        text = render_cell(run.configurations[0].lists[0][0])
        assert "01@0" in text and text.startswith("⟨")

    def test_render_configuration_marks_heads(self):
        nlm, run = self._run()
        text = render_configuration(run.configurations[0])
        assert "state = copy:0" in text
        assert "→" in text
        assert "list 1" in text and "list 2" in text

    def test_render_run_shows_verdict_and_steps(self):
        nlm, run = self._run()
        text = render_run(run, nlm)
        assert "ACCEPT" in text
        assert "-- step 0" in text
        assert f"{run.length} configurations" in text

    def test_render_run_clips(self):
        nlm, run = self._run()
        text = render_run(run, nlm, max_steps=2)
        assert "more configurations" in text

    def test_render_skeleton(self):
        nlm, run = self._run()
        text = render_skeleton(skeleton_of_run(run))
        assert "skeleton of length" in text
        assert "state copy:0" in text

    def test_render_skeleton_wildcards(self):
        from repro.listmachine.examples import single_scan_parity_nlm

        nlm = single_scan_parity_nlm(WORDS, 1)
        run = run_deterministic(nlm, ["01"])
        text = render_skeleton(skeleton_of_run(run))
        assert "= ?" in text  # the clamped final step is a wildcard
