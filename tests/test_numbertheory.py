"""Unit and property tests for repro.numbertheory."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import numbertheory as nt
from repro.errors import ReproError
from repro.numbertheory.primes import prime_factors


KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 97, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 15, 91, 561, 1105, 2**32 - 1, 7917]


class TestIsPrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert nt.is_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites(self, c):
        assert not nt.is_prime(c)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that fool weak tests
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not nt.is_prime(n)

    def test_agrees_with_sieve(self):
        sieve = set(nt.primes_up_to(2000))
        for n in range(2000):
            assert nt.is_prime(n) == (n in sieve)

    @given(st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=200)
    def test_factorization_consistency(self, n):
        factors = prime_factors(n)
        prod = 1
        for f in factors:
            prod *= f
            assert nt.is_prime(f)
        assert prod == n
        assert nt.is_prime(n) == (len(factors) == 1)


class TestSieve:
    def test_small(self):
        assert nt.primes_up_to(1) == []
        assert nt.primes_up_to(2) == [2]
        assert nt.primes_up_to(30) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_count_to_ten_thousand(self):
        assert len(nt.primes_up_to(10_000)) == 1229  # π(10^4)

    def test_range(self):
        assert nt.primes_in_range(10, 30) == [11, 13, 17, 19, 23, 29]
        assert nt.primes_in_range(30, 10) == []
        # strict lower bound, inclusive upper bound
        assert nt.primes_in_range(11, 13) == [13]


class TestNextPrevPrime:
    def test_next(self):
        assert nt.next_prime(1) == 2
        assert nt.next_prime(2) == 3
        assert nt.next_prime(14) == 17
        assert nt.next_prime(7919) == 7927

    def test_prev(self):
        assert nt.prev_prime(3) == 2
        assert nt.prev_prime(18) == 17

    def test_prev_underflow(self):
        with pytest.raises(ReproError):
            nt.prev_prime(2)

    @given(st.integers(min_value=2, max_value=10**5))
    @settings(max_examples=100)
    def test_next_is_next(self, n):
        p = nt.next_prime(n)
        assert p > n and nt.is_prime(p)
        assert all(not nt.is_prime(q) for q in range(n + 1, p))


class TestSampling:
    def test_random_prime_at_most_uniform_support(self):
        rng = random.Random(1)
        seen = {nt.random_prime_at_most(20, rng) for _ in range(300)}
        assert seen == {2, 3, 5, 7, 11, 13, 17, 19}

    def test_random_prime_requires_k_ge_2(self):
        with pytest.raises(ReproError):
            nt.random_prime_at_most(1, random.Random(0))

    def test_random_prime_is_deterministic_given_seed(self):
        # above the deterministic Miller–Rabin bound is_prime consumes the
        # caller's rng for witnesses; the sample must still be reproducible
        # from the seed alone (the rng is forwarded, not replaced by a
        # fresh global source)
        k = 10**26
        a = nt.random_prime_at_most(k, random.Random(42))
        b = nt.random_prime_at_most(k, random.Random(42))
        assert a == b
        assert nt.is_prime(a, rng=random.Random(0))

    def test_bertrand_prime_in_interval(self):
        for k in [1, 2, 3, 10, 100, 12345, 10**6]:
            p = nt.bertrand_prime(k)
            assert 3 * k < p <= 6 * k
            assert nt.is_prime(p)

    def test_bertrand_rejects_zero(self):
        with pytest.raises(ReproError):
            nt.bertrand_prime(0)

    def test_prime_count_upper_is_upper(self):
        for k in [2, 10, 100, 1000, 10_000]:
            assert nt.prime_count_upper(k) >= len(nt.primes_up_to(k))


class TestModular:
    def test_mod_pow_matches_builtin(self):
        assert nt.mod_pow(3, 41, 1000) == pow(3, 41, 1000)

    def test_mod_pow_rejects_bad_args(self):
        with pytest.raises(ReproError):
            nt.mod_pow(2, 3, 0)
        with pytest.raises(ReproError):
            nt.mod_pow(2, -1, 5)

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=100)
    def test_mod_inverse(self, a):
        p = 1_000_003  # prime
        if a % p == 0:
            return
        inv = nt.mod_inverse(a, p)
        assert (a * inv) % p == 1

    def test_mod_inverse_noninvertible(self):
        with pytest.raises(ReproError):
            nt.mod_inverse(6, 9)

    def test_poly_eval_mod_horner(self):
        # 2 + 3x + x^2 at x=5 mod 97 → 2 + 15 + 25 = 42
        assert nt.poly_eval_mod([2, 3, 1], 5, 97) == 42

    def test_power_sum_mod(self):
        # x=2: 2^1 + 2^3 + 2^4 = 26
        assert nt.power_sum_mod([1, 3, 4], 2, 1009) == 26

    def test_crt_pair(self):
        x = nt.crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    def test_streaming_residue_matches_int(self):
        from repro.numbertheory.modular import streaming_residue

        value = 0b110101101
        bits = [int(b) for b in bin(value)[2:]]
        assert streaming_residue(bits, 17) == value % 17

    def test_streaming_residue_rejects_nonbits(self):
        from repro.numbertheory.modular import streaming_residue

        with pytest.raises(ReproError):
            streaming_residue([0, 2, 1], 7)
