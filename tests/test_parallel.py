"""The parallel batch runtime: determinism, containment, observability.

The load-bearing property is the oracle relation: for any task list,
``ParallelExecutor(jobs=k)`` must produce outcomes *equal* to
``SerialExecutor`` — same values, same structured errors, same order —
for every k and every chunking.  Everything else (crash containment,
pickling hygiene, metrics) protects that property or observes it.
"""

import os
import pickle
import random

import pytest
from hypothesis import given, strategies as st

from tests.settings_profiles import QUICK_SETTINGS
from repro.errors import MachineError, ReproError
from repro.machines import is_simd_available
from repro.machines.library import coin_flip_machine, equality_machine
from repro.machines.random_machines import random_terminating_tm
from repro.parallel import (
    ERROR_EXCEPTION,
    ERROR_WORKER_CRASH,
    BatchTask,
    ParallelExecutor,
    SerialExecutor,
    auto_chunk_size,
    derive_task_rng,
    run_batch,
)


# -- module-level task bodies (workers import these by qualified name) ----


def square(x):
    return x * x


def draw(count, rng):
    return [rng.randrange(1000) for _ in range(count)]


def fail_on(x, bad):
    if x == bad:
        raise ValueError(f"poisoned input {x}")
    return x


def die_on(x, bad):
    if x == bad:
        os._exit(13)  # hard crash: no exception crosses the pipe
    return x


def _accepts(machine, word):
    from repro.machines.fast_engine import run_deterministic

    return run_deterministic(machine, word).accepts(machine)


def accepts_random_tm(seed, word):
    machine = random_terminating_tm(seed)
    try:
        return _accepts(machine, word)
    except MachineError as exc:  # generator artifact: left-end fall
        return f"machine-error:{exc}"


class TestOracleRelation:
    """Parallel == serial, for values, errors, and order."""

    def test_values_and_order(self):
        tasks = [BatchTask.call(square, x) for x in range(17)]
        serial = SerialExecutor().run_batch(tasks)
        for jobs in (2, 4):
            par = ParallelExecutor(jobs).run_batch(tasks)
            assert par.outcomes == serial.outcomes
        assert serial.values() == [x * x for x in range(17)]

    def test_seeded_tasks_identical_across_chunkings(self):
        tasks = [BatchTask.call(draw, 5, seeded=True) for _ in range(9)]
        baseline = SerialExecutor().run_batch(tasks, seed=42)
        for jobs, chunk in ((2, 1), (2, 4), (4, 2), (3, None)):
            par = ParallelExecutor(jobs).run_batch(
                tasks, seed=42, chunk_size=chunk
            )
            assert par.outcomes == baseline.outcomes
        # the streams really are per-task: task 0 and task 1 differ
        assert baseline.outcomes[0].value != baseline.outcomes[1].value

    def test_auto_chunk_size_is_deterministic(self):
        # a pure function of (tasks, workers): repeated evaluation and a
        # fresh executor's partition must produce the same chunking
        for count, workers in ((0, 1), (1, 1), (9, 2), (100, 4), (7, 16)):
            first = auto_chunk_size(count, workers)
            assert first == auto_chunk_size(count, workers)
            assert first >= 1
            # ~4 chunks per worker: ceil division, floored at one task
            assert first == max(1, -(-count // (workers * 4)))
        indexed = [(i, BatchTask.call(square, i)) for i in range(10)]
        parts = [
            ParallelExecutor(2)._partition(indexed, "auto", 2)
            for _ in range(2)
        ]
        assert parts[0] == parts[1]
        assert parts[0] == ParallelExecutor(2)._partition(indexed, None, 2)
        assert [len(chunk) for chunk in parts[0]] == [2, 2, 2, 2, 2]

    def test_auto_chunking_matches_serial_oracle(self):
        tasks = [BatchTask.call(draw, 5, seeded=True) for _ in range(9)]
        baseline = SerialExecutor().run_batch(tasks, seed=42)
        par = ParallelExecutor(2).run_batch(
            tasks, seed=42, chunk_size="auto"
        )
        assert par.outcomes == baseline.outcomes

    def test_bad_chunk_size_rejected(self):
        tasks = [BatchTask.call(square, 1)]
        for bad in (0, -3, "adaptive", 2.5):
            with pytest.raises(ReproError, match="chunk_size"):
                ParallelExecutor(2).run_batch(tasks, chunk_size=bad)

    def test_seed_changes_streams(self):
        tasks = [BatchTask.call(draw, 5, seeded=True)]
        a = run_batch(tasks, seed=1)
        b = run_batch(tasks, seed=2)
        assert a.outcomes[0].value != b.outcomes[0].value

    def test_derive_task_rng_is_the_contract(self):
        expected = [
            derive_task_rng(42, i).randrange(1000) for i in range(3)
        ]
        tasks = [BatchTask.call(draw, 1, seeded=True) for _ in range(3)]
        got = [v[0] for v in run_batch(tasks, seed=42).values()]
        assert got == expected

    def test_structured_errors_match_serial(self):
        tasks = [BatchTask.call(fail_on, x, 3) for x in range(6)]
        serial = SerialExecutor().run_batch(tasks)
        par = ParallelExecutor(2).run_batch(tasks)
        assert par.outcomes == serial.outcomes
        (bad,) = serial.errors
        assert bad.index == 3
        assert bad.error.kind == ERROR_EXCEPTION
        assert bad.error.exception_type == "ValueError"
        assert "poisoned" in bad.error.message
        with pytest.raises(ReproError, match="poisoned"):
            par.values()
        assert par.values(strict=False)[3] is None

    def test_empty_batch(self):
        for jobs in (1, 2):
            result = run_batch([], jobs=jobs)
            assert result.outcomes == ()
            assert result.ok

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.text(alphabet="01", max_size=5),
            ),
            min_size=1,
            max_size=4,
        ),
        st.booleans(),
    )
    @QUICK_SETTINGS
    def test_random_machine_batches_match(self, cases, poison):
        """Random TM runs — with an error path mixed in — agree exactly
        between the serial oracle and both parallel widths."""
        tasks = [
            BatchTask.call(accepts_random_tm, seed, word)
            for seed, word in cases
        ]
        if poison:
            tasks.append(BatchTask.call(fail_on, 3, 3))
        serial = SerialExecutor().run_batch(tasks)
        for jobs in (2, 4):
            par = ParallelExecutor(jobs).run_batch(tasks)
            assert par.outcomes == serial.outcomes


class TestCrashContainment:
    def test_worker_crash_is_contained(self):
        tasks = [BatchTask.call(die_on, x, 4) for x in range(8)]
        result = ParallelExecutor(2, max_retries=1).run_batch(tasks)
        crashed = result.outcomes[4]
        assert not crashed.ok
        assert crashed.error.kind == ERROR_WORKER_CRASH
        assert crashed.attempts == 2  # initial + max_retries retries
        # every innocent sibling completed, in order, first attempt
        for x, outcome in enumerate(result.outcomes):
            assert outcome.index == x
            if x != 4:
                assert outcome.ok and outcome.value == x
        assert result.worker_restarts >= 1

    def test_unpicklable_task_is_a_dispatch_error_not_a_hang(self):
        tasks = [
            BatchTask.call(square, 2),
            BatchTask.call(lambda x: x, 1),  # lambdas do not pickle
        ]
        result = ParallelExecutor(2).run_batch(tasks)
        assert result.outcomes[0].ok
        assert not result.outcomes[1].ok

    def test_serial_executor_never_retries_crashes(self):
        # the serial oracle runs in-process; a crash there is a real
        # crash, so only the exception path is containable
        tasks = [BatchTask.call(fail_on, 1, 1)]
        result = SerialExecutor().run_batch(tasks)
        assert result.outcomes[0].error.kind == ERROR_EXCEPTION


class TestMachinePickling:
    def test_compiled_caches_are_not_pickled(self):
        from repro.machines.batch_engine import try_compile_batch
        from repro.machines.compiled_engine import try_compile

        machine = equality_machine()
        word = "0101#0101"
        before = _accepts(machine, word)  # warms the streaming caches
        assert try_compile(machine) is not None  # ... and the compiled one
        assert try_compile_batch(machine) is not None  # ... and the batch one
        assert "_compiled_steps" in machine.__dict__
        assert "_transition_index" in machine.__dict__
        assert "_compiled_program" in machine.__dict__
        assert "_batch_program" in machine.__dict__
        state = machine.__getstate__()
        for attr in type(machine)._CACHE_ATTRS:
            assert attr not in state, attr
        # the compiled program holds re patterns, which do not pickle:
        # stripping it is what keeps the machine picklable at all
        clone = pickle.loads(pickle.dumps(machine))
        assert "_compiled_steps" not in clone.__dict__
        assert "_compiled_program" not in clone.__dict__
        assert "_batch_program" not in clone.__dict__
        assert clone == machine
        assert _accepts(clone, word) == before

    def test_no_underscore_attribute_survives_pickle(self):
        """The generic strip covers every derived cache, present and future.

        Warm *all* known memo layers — including the cache layer's
        machine fingerprint — then assert no underscore-prefixed
        ``__dict__`` entry whatsoever rides the pickle.  A new memo attr
        added under an underscore name is covered automatically; one
        added under a bare name would trip the inverse check below.
        """
        from repro.cache import machine_fingerprint
        from repro.machines.batch_engine import try_compile_batch
        from repro.machines.compiled_engine import try_compile
        from repro.machines.simd_engine import try_compile_simd

        machine = equality_machine()
        _accepts(machine, "01#01")
        try_compile(machine)
        try_compile_batch(machine)
        try_compile_simd(machine)
        machine_fingerprint(machine)
        warmed = {k for k in machine.__dict__ if k.startswith("_")}
        # every documented cache attr is actually warmable — the doc
        # tuple cannot drift ahead of (or behind) reality silently
        expected = set(type(machine)._CACHE_ATTRS)
        if not is_simd_available():
            # without NumPy the SIMD tier declines before the memo
            expected.discard("_simd_program")
        assert warmed == expected
        clone = pickle.loads(pickle.dumps(machine))
        leaked = [k for k in clone.__dict__ if k.startswith("_")]
        assert leaked == []
        assert clone == machine
        # the fingerprint memo rebuilds to the same digest after the trip
        assert machine_fingerprint(clone) == machine_fingerprint(machine)

    def test_unpickled_machine_runs_compiled_bit_identically(self):
        from repro.machines import compiled_engine, fast_engine
        from repro.machines.compiled_engine import try_compile

        machine = equality_machine()
        word = "0110#0110"
        try_compile(machine)  # warmed cache must not leak into the pickle
        clone = pickle.loads(pickle.dumps(machine))
        original = fast_engine.run_deterministic(machine, word)
        rerun = compiled_engine.run_deterministic(clone, word)
        assert rerun.final == original.final
        assert rerun.statistics == original.statistics

    def test_unpickled_machine_runs_batch_bit_identically(self):
        from repro.machines import run_deterministic_batch
        from repro.machines.batch_engine import try_compile_batch

        machine = equality_machine()
        words = ["0110#0110", "0#1", "zz", ""]
        try_compile_batch(machine)  # warmed cache must not leak
        original = run_deterministic_batch(machine, words)
        clone = pickle.loads(pickle.dumps(machine))
        rerun = run_deterministic_batch(clone, words)
        for before, after in zip(original, rerun):
            assert after.index == before.index
            assert after.ok == before.ok
            if before.ok:
                assert after.result.final == before.result.final
                assert after.result.statistics == before.result.statistics
            else:
                assert type(after.error) is type(before.error)
                assert str(after.error) == str(before.error)

    def test_round_trip_runs_bit_identically(self):
        machine = coin_flip_machine()
        clone = pickle.loads(pickle.dumps(machine))
        from repro.machines.fast_engine import acceptance_probability

        assert acceptance_probability(machine, "0101") == (
            acceptance_probability(clone, "0101")
        )


class TestObservability:
    def test_batch_span_and_counters(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.trace import Tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        tasks = [BatchTask.call(square, x) for x in range(5)]
        run_batch(
            tasks, jobs=2, label="probe", registry=registry, tracer=tracer
        )
        assert registry.counter("batch_tasks_dispatched").value(
            batch="probe"
        ) == 5
        assert registry.counter("batch_tasks_completed").value(
            batch="probe"
        ) == 5
        assert registry.counter("batch_tasks_failed").value(batch="probe") == 0
        assert registry.histogram("batch_task_seconds").count(batch="probe") == 5
        (span,) = [s for s in tracer.spans() if s.name == "batch:probe"]
        assert span.category == "batch"
        assert span.args["tasks"] == 5
        assert span.args["jobs"] == 2
        assert span.args["completed"] == 5
        assert span.args["failed"] == 0

    def test_restart_counter_on_crash(self):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tasks = [BatchTask.call(die_on, x, 1) for x in range(3)]
        ParallelExecutor(2, max_retries=0).run_batch(
            tasks, label="crashy", registry=registry
        )
        assert registry.counter("batch_worker_restarts").value(
            batch="crashy"
        ) >= 1

    def test_dag_stats_reach_the_registry(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.trace import EngineProbe, Tracer
        from repro.machines.fast_engine import acceptance_probability

        registry = MetricsRegistry()
        probe = EngineProbe(tracer=Tracer(), registry=registry)
        acceptance_probability(coin_flip_machine(), "01", probe=probe)
        assert registry.counter("dag_configs_interned_total").value() > 0
        assert registry.counter("dag_frames_total").value() > 0


class TestRoutedCallSites:
    """The four production sweeps really go through the runtime and
    really don't change their answers."""

    def test_audit_parallel_json_identical(self):
        import json

        from repro.observability.audit import run_contract_audit

        serial = json.dumps(run_contract_audit(quick=True).to_json_dict())
        par = json.dumps(run_contract_audit(quick=True, jobs=2).to_json_dict())
        assert par == serial

    def test_census_parity_and_factory_requirement(self):
        import functools

        from repro.listmachine.examples import tandem_compare_nlm
        from repro.lowerbounds.counting import enumerate_skeletons

        alphabet = frozenset({"00", "01", "10", "11"})
        factory = functools.partial(tandem_compare_nlm, alphabet, 2)
        nlm = factory()
        serial = enumerate_skeletons(nlm, sorted(alphabet), r=2)
        par = enumerate_skeletons(
            nlm, sorted(alphabet), r=2, jobs=2, machine_factory=factory
        )
        assert par == serial
        with pytest.raises(MachineError, match="machine_factory"):
            enumerate_skeletons(nlm, sorted(alphabet), r=2, jobs=2)

    def test_census_decode_matches_product_order(self):
        import itertools

        from repro.lowerbounds.counting import decode_input

        alphabet = ("a", "b", "c")
        listed = list(itertools.product(alphabet, repeat=3))
        decoded = [decode_input(alphabet, 3, i) for i in range(len(listed))]
        assert decoded == listed

    def test_mc_acceptance_estimate_is_jobs_invariant(self):
        from repro.machines.randomized import estimate_acceptance_probability

        machine = coin_flip_machine()
        serial = estimate_acceptance_probability(machine, "0101", 96, seed=5)
        par = estimate_acceptance_probability(
            machine, "0101", 96, seed=5, jobs=3
        )
        assert par == serial
        # a fair coin over 96 trials should land loosely around 1/2
        assert 0.25 <= float(serial.estimate) <= 0.75

    def test_fingerprint_trials_jobs_invariant(self):
        from repro.algorithms.fingerprint import monte_carlo_fingerprint_trials

        serial = monte_carlo_fingerprint_trials(
            4, 8, 32, kind="near-miss", seed=3
        )
        par = monte_carlo_fingerprint_trials(
            4, 8, 32, kind="near-miss", seed=3, jobs=2
        )
        assert par == serial
        assert serial.trials == 32

    def test_fingerprint_trials_regrouping_invariant(self):
        """The lane contract: per-trial rngs come from the *global* lane
        index, so regrouping lanes into different ``BatchTask.map`` task
        boundaries cannot move a single draw.  ``k=3`` keeps the prime
        range small enough that near-miss false positives are plentiful,
        so a moved draw would actually change the acceptance count."""
        from repro.algorithms.fingerprint import monte_carlo_fingerprint_trials

        baseline = monte_carlo_fingerprint_trials(
            4, 8, 32, kind="near-miss", seed=3, k=3
        )
        assert 0 < baseline.accepted < baseline.trials
        for per_task in (1, 5, 7, 32, 100):
            regrouped = monte_carlo_fingerprint_trials(
                4, 8, 32, kind="near-miss", seed=3, k=3,
                trials_per_task=per_task,
            )
            assert regrouped == baseline
        par = monte_carlo_fingerprint_trials(
            4, 8, 32, kind="near-miss", seed=3, k=3, jobs=2,
            trials_per_task=7,
        )
        assert par == baseline

    def test_rtm_check_jobs_invariant(self):
        from repro.machines.randomized import check_half_zero_rtm

        machine = coin_flip_machine()
        serial = check_half_zero_rtm(machine, ["01", "0011"], [])
        par = check_half_zero_rtm(machine, ["01", "0011"], [], jobs=2)
        assert par == serial
        assert serial.holds

    def test_engine_bench_rows_jobs_invariant_shape(self):
        import sys
        from pathlib import Path

        bench_dir = str(Path(__file__).resolve().parent.parent / "benchmarks")
        sys.path.insert(0, bench_dir)
        try:
            from bench_engine import run_engine_benchmark
        finally:
            sys.path.remove(bench_dir)

        serial = run_engine_benchmark(sizes=(16,), repeats=1)
        par = run_engine_benchmark(sizes=(16,), repeats=1, jobs=2)
        strip = lambda rows: [
            {
                k: v
                for k, v in r.items()
                if "seconds" not in k and "speedup" not in k
            }
            for r in rows
        ]
        assert strip(par) == strip(serial)
        assert all(r["verified_identical"] for r in serial)
