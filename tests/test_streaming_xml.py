"""Tests for streaming (token-tape) evaluation of the XML queries."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import ceil_log2
from repro.extmem import RecordTape, ResourceTracker
from repro.problems import (
    decode_instance,
    encode_instance,
    random_equal_instance,
    random_unequal_instance,
)
from repro.queries.xml import instance_to_document, parse_tokens
from repro.queries.xml.streaming import (
    figure1_filter_streaming,
    instance_to_token_tape,
    theorem12_query_streaming,
)
from repro.queries.xpath import figure1_query, matches
from repro.queries.xquery import evaluate_xquery, theorem12_query
from repro.queries.xml.document import serialize


class TestTokenTapeEncoding:
    def test_single_scan(self):
        rng = random.Random(0)
        inst = random_equal_instance(8, 6, rng)
        tape, tracker = instance_to_token_tape(inst)
        assert tracker.reversals == 0  # one producing scan

    def test_tokens_parse_to_the_dom_document(self):
        rng = random.Random(1)
        inst = random_equal_instance(5, 5, rng)
        tape, _ = instance_to_token_tape(inst)
        doc_from_stream = parse_tokens(tape.snapshot())
        doc_from_dom = instance_to_document(inst)
        assert serialize(doc_from_stream.root) == serialize(doc_from_dom.root)

    def test_empty_instance(self):
        tape, _ = instance_to_token_tape("")
        doc = parse_tokens(tape.snapshot())
        assert doc.root.name == "instance"


class TestStreamingFigure1:
    def _both(self, inst):
        tape, tracker = instance_to_token_tape(inst)
        streaming = figure1_filter_streaming(tape, tracker)
        dom = matches(figure1_query(), instance_to_document(inst))
        return streaming, dom

    def test_agreement_on_random_instances(self):
        rng = random.Random(2)
        for _ in range(15):
            inst = (
                random_equal_instance(6, 5, rng)
                if rng.random() < 0.5
                else random_unequal_instance(6, 5, rng)
            )
            streaming, dom = self._both(inst)
            assert streaming.answer == dom

    def test_duplicates_handled_as_sets(self):
        inst = decode_instance(encode_instance(["0", "0", "1"], ["1", "1", "0"]))
        streaming, dom = self._both(inst)
        assert streaming.answer == dom is False

    def test_empty_strings(self):
        inst = decode_instance("##")
        streaming, dom = self._both(inst)
        assert streaming.answer == dom is False
        inst2 = decode_instance(encode_instance(["", "1"], ["1", "1"]))
        streaming2, dom2 = self._both(inst2)
        assert streaming2.answer == dom2 is True

    @given(
        st.lists(st.text(alphabet="01", max_size=4), min_size=1, max_size=6),
        st.lists(st.text(alphabet="01", max_size=4), min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_agreement(self, xs, ys):
        k = min(len(xs), len(ys))
        inst = decode_instance(encode_instance(xs[:k], ys[:k]))
        streaming, dom = self._both(inst)
        assert streaming.answer == dom
        assert streaming.answer == bool(set(inst.first) - set(inst.second))

    def test_scan_law_logarithmic(self):
        rng = random.Random(3)
        scans = {}
        for m in (16, 256):
            inst = random_equal_instance(m, 8, rng)
            tape, tracker = instance_to_token_tape(inst)
            result = figure1_filter_streaming(tape, tracker)
            scans[m] = result.report.scans
        assert scans[256] <= 2.5 * scans[16]
        assert scans[256] <= 30 * (ceil_log2(256 * 9) + 2)


class TestStreamingTheorem12:
    def test_agreement_with_dom_evaluator(self):
        rng = random.Random(4)
        for _ in range(15):
            inst = (
                random_equal_instance(5, 5, rng)
                if rng.random() < 0.5
                else random_unequal_instance(5, 5, rng)
            )
            tape, tracker = instance_to_token_tape(inst)
            streaming = theorem12_query_streaming(tape, tracker)
            dom_out = serialize(
                evaluate_xquery(theorem12_query(), instance_to_document(inst))[0]
            )
            assert streaming.answer == (dom_out == "<result><true/></result>")

    @given(
        st.lists(st.text(alphabet="01", max_size=3), min_size=1, max_size=5),
        st.lists(st.text(alphabet="01", max_size=3), min_size=1, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_decides_set_equality(self, xs, ys):
        k = min(len(xs), len(ys))
        inst = decode_instance(encode_instance(xs[:k], ys[:k]))
        tape, tracker = instance_to_token_tape(inst)
        streaming = theorem12_query_streaming(tape, tracker)
        assert streaming.answer == (set(inst.first) == set(inst.second))
