"""Tests for the remaining Lemma 21/22 parameter helpers."""

import pytest

from repro.errors import ReproError
from repro.lowerbounds.parameters import (
    LowerBoundParameters,
    adversarial_input_space_size,
    comparisons_bound,
    equal_input_count,
    lemma21_applies,
    lemma21_hypotheses,
    lemma22_thresholds,
    simulation_state_bound,
    skeleton_count_bound,
)


class TestParameterHelpers:
    def _params(self):
        return LowerBoundParameters(t=2, r=1, m=4, n=8, k=16)

    def test_instance_size(self):
        p = self._params()
        assert p.instance_size == 2 * 4 * 9
        assert p.input_positions == 8

    def test_hypotheses_named(self):
        p = self._params()
        hyps = lemma21_hypotheses(p)
        assert set(hyps) == {
            "t >= 2",
            "m is a power of 2",
            "m >= 24*(t+1)^(4r) + 1",
            "k >= 2m + 3",
            "n >= 1 + (m^2+1)*log(2k)",
        }
        # these toy parameters violate the m-threshold
        assert not hyps["m >= 24*(t+1)^(4r) + 1"]
        assert not lemma21_applies(p)

    def test_comparisons_bound_formula(self):
        p = self._params()
        assert comparisons_bound(p, 3) == 2 ** (2 * 1) * 3

    def test_skeleton_count_bound_formula(self):
        p = LowerBoundParameters(t=2, r=0, m=1, n=8, k=1)
        # exponent = 12·1·(3)^2 + 24·1 = 132; base = 1+1+3
        assert skeleton_count_bound(p) == 5**132

    def test_simulation_state_bound(self):
        assert simulation_state_bound(2, 1, 1, 4, d=1) == 2 ** (
            1 * 4 * 1 * 1 + 3 * 2 * 2
        )

    def test_input_space_sizes(self):
        p = LowerBoundParameters(t=2, r=1, m=4, n=4, k=16)
        # intervals of size 2^4/4 = 4; |I| = 4^(2·4), |I_eq| = 4^4
        assert adversarial_input_space_size(p) == 4**8
        assert equal_input_count(p) == 4**4

    def test_input_space_needs_room(self):
        p = LowerBoundParameters(t=2, r=1, m=16, n=2, k=16)
        with pytest.raises(ReproError):
            adversarial_input_space_size(p)

    def test_thresholds_reject_strong_machines(self):
        """A machine with r(N) = Θ(log N) escapes: no admissible m exists
        below the cap (the search returns None) — matching the tightness of
        Theorem 6."""
        import math

        result = lemma22_thresholds(
            lambda n: max(1, int(math.log2(max(2, n)))),
            lambda _n: 1,
            2,
            m_max=2**20,
        )
        assert result is None
