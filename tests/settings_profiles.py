"""Tiered Hypothesis settings profiles for property tests.

Tiers (each instance is usable directly as a decorator under ``@given``):

- ``DIFFERENTIAL_SETTINGS``: 100 examples — engine-vs-engine equivalence
  tests, where every counterexample is a correctness bug in one engine;
- ``STANDARD_SETTINGS``: 50 examples — regular property tests;
- ``QUICK_SETTINGS``: 20 examples — expensive-per-example tests (machine
  generation, exact-probability DPs);
- ``SIMD_SETTINGS``: 60 examples — SIMD cohort-regrouping invariance
  properties, where every example runs whole batches on two tiers and a
  counterexample means the vectorized kernels drifted from the serial
  semantics.

All tiers disable the deadline and the too-slow health check: tape-level
simulation cost is dominated by the generated machine, not by a bug, and
loaded CI machines add scheduler jitter.
"""

from hypothesis import HealthCheck, settings

_BASE = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

DIFFERENTIAL_SETTINGS = settings(max_examples=100, **_BASE)
STANDARD_SETTINGS = settings(max_examples=50, **_BASE)
QUICK_SETTINGS = settings(max_examples=20, **_BASE)
SIMD_SETTINGS = settings(max_examples=60, **_BASE)
