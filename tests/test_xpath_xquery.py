"""Tests for the XPath (Figure 1 / Theorem 13) and XQuery (Theorem 12) engines."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuerySyntaxError
from repro.problems import (
    SET_EQUALITY,
    decode_instance,
    encode_instance,
    random_equal_instance,
    random_unequal_instance,
)
from repro.queries.xml import Element, instance_to_document, parse, serialize
from repro.queries.xpath import (
    FIGURE1_TEXT,
    Axis,
    evaluate_xpath,
    figure1_query,
    matches,
    parse_xpath,
)
from repro.queries.xquery import (
    THEOREM12_TEXT,
    evaluate_xquery,
    parse_xquery,
    theorem12_query,
)

DOC = parse(
    "<instance>"
    "<set1><item><string>01</string></item><item><string>10</string></item></set1>"
    "<set2><item><string>10</string></item><item><string>11</string></item></set2>"
    "</instance>"
)


class TestXPathParser:
    def test_simple_absolute_path(self):
        path = parse_xpath("/instance/set1/item")
        assert path.absolute
        assert [s.name_test for s in path.steps] == ["instance", "set1", "item"]
        assert all(s.axis == Axis.CHILD for s in path.steps)

    def test_explicit_axes(self):
        path = parse_xpath("descendant::set1/ancestor::instance")
        assert path.steps[0].axis == Axis.DESCENDANT
        assert path.steps[1].axis == Axis.ANCESTOR

    def test_double_slash(self):
        path = parse_xpath("//item")
        assert path.absolute and path.steps[0].axis == Axis.DESCENDANT

    def test_wildcard(self):
        assert parse_xpath("child::*").steps[0].name_test == "*"

    def test_figure1_parses_to_builtin_ast(self):
        assert parse_xpath(FIGURE1_TEXT) == figure1_query()

    def test_not_with_parentheses(self):
        a = parse_xpath("item[not(child::string = child::string)]")
        b = parse_xpath("item[not child::string = child::string]")
        assert a == b

    @pytest.mark.parametrize(
        "bad", ["", "/", "a//", "a[", "a[]", "a]b", "a[=b]", "bogus::a"]
    )
    def test_rejects_garbage(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_xpath(bad)

    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_xpath("a b")


class TestXPathEvaluation:
    def test_child_axis(self):
        items = evaluate_xpath("/instance/set1/item", DOC)
        assert len(items) == 2

    def test_descendant_axis(self):
        strings = evaluate_xpath("//string", DOC)
        assert [s.string_value() for s in strings] == ["01", "10", "10", "11"]

    def test_ancestor_axis(self):
        out = evaluate_xpath(
            "/instance/set1/item/string/ancestor::instance", DOC
        )
        assert len(out) == 1 and out[0].name == "instance"

    def test_self_and_parent(self):
        out = evaluate_xpath("/instance/set1/self::set1", DOC)
        assert len(out) == 1
        out = evaluate_xpath("/instance/set1/item/parent::set1", DOC)
        assert len(out) == 1  # deduplicated node-set

    def test_wildcard_matches_elements_only(self):
        out = evaluate_xpath("/instance/set1/item/string/child::*", DOC)
        assert out == []  # text nodes are not matched by name tests

    def test_existence_predicate(self):
        out = evaluate_xpath("/instance/set1/item[child::string]", DOC)
        assert len(out) == 2

    def test_comparison_predicate_existential(self):
        # items whose string equals SOME string in set2
        out = evaluate_xpath(
            "/instance/set1/item[child::string = /instance/set2/item/string]",
            DOC,
        )
        assert len(out) == 1
        assert out[0].string_value() == "10"


class TestFigure1:
    def test_selects_set_difference(self):
        # X = {01, 10}, Y = {10, 11} → X − Y = {01}
        out = evaluate_xpath(figure1_query(), DOC)
        assert [n.string_value() for n in out] == ["01"]

    def test_filtering_decides_noncontainment(self):
        rng = random.Random(0)
        for _ in range(10):
            inst = random_equal_instance(5, 5, rng)
            doc = instance_to_document(inst)
            # X = Y → X − Y = ∅ → no node matches
            assert not matches(figure1_query(), doc)

    def test_filtering_fires_on_difference(self):
        inst = decode_instance(encode_instance(["00", "01"], ["00", "11"]))
        doc = instance_to_document(inst)
        assert matches(figure1_query(), doc)

    def test_theorem13_double_run_protocol(self):
        """X = Y iff neither direction of the filter fires (proof of Thm 13)."""
        rng = random.Random(1)
        for make_yes in (True, False):
            inst = (
                random_equal_instance(5, 5, rng)
                if make_yes
                else random_unequal_instance(5, 5, rng)
            )
            # SET equality, not multiset: recompute the ground truth
            truth = set(inst.first) == set(inst.second)
            forward = matches(figure1_query(), instance_to_document(inst))
            backward = matches(
                figure1_query(), instance_to_document(inst.swapped())
            )
            assert (not forward and not backward) == truth

    @given(
        st.lists(st.text(alphabet="01", min_size=1, max_size=3), min_size=1, max_size=5),
        st.lists(st.text(alphabet="01", min_size=1, max_size=3), min_size=1, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_selected_equals_difference(self, xs, ys):
        k = min(len(xs), len(ys))
        inst = decode_instance(encode_instance(xs[:k], ys[:k]))
        doc = instance_to_document(inst)
        selected = {
            n.string_value() for n in evaluate_xpath(figure1_query(), doc)
        }
        assert selected == set(inst.first) - set(inst.second)


class TestXQueryParser:
    def test_theorem12_shape(self):
        from repro.queries.xquery import ElementConstructor, IfExpr

        q = theorem12_query()
        assert isinstance(q, ElementConstructor)
        assert q.name == "result"
        assert len(q.content) == 1
        assert isinstance(q.content[0], IfExpr)

    def test_empty_sequence(self):
        from repro.queries.xquery import EmptySequence

        assert isinstance(parse_xquery("()"), EmptySequence)

    def test_braced_content(self):
        q = parse_xquery("<r>{ /instance/set1 }</r>")
        assert q.name == "r" and len(q.content) == 1

    def test_rejects_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_xquery("if then else")
        with pytest.raises(QuerySyntaxError):
            parse_xquery("<a>")
        with pytest.raises(QuerySyntaxError):
            parse_xquery("every x in y satisfies z")  # var needs '$'

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_xquery("() ()")


class TestXQueryEvaluation:
    def test_quantifiers(self):
        doc = DOC
        assert evaluate_xquery(
            "every $x in /instance/set1/item/string satisfies $x = $x", doc
        ) == [True]
        assert evaluate_xquery(
            "some $x in /instance/set1/item/string satisfies "
            "$x = /instance/set2/item/string",
            doc,
        ) == [True]

    def test_if_and_constructor(self):
        out = evaluate_xquery("if ( () ) then <a/> else <b/>", DOC)
        assert len(out) == 1 and out[0].name == "b"

    def test_and_or(self):
        base = "/instance/set1/item/string"
        assert evaluate_xquery(f"({base}) and ({base})", DOC) == [True]
        assert evaluate_xquery(f"( () ) or ({base})", DOC) == [True]
        assert evaluate_xquery("( () ) and ( () )", DOC) == [False]

    def test_unbound_variable(self):
        from repro.errors import QueryEvaluationError

        with pytest.raises(QueryEvaluationError):
            evaluate_xquery("$nope = $nope", DOC)

    def test_constructor_copies_nodes(self):
        out = evaluate_xquery("<wrap>{ /instance/set1/item/string }</wrap>", DOC)
        wrap = out[0]
        assert serialize(wrap) == "<wrap><string>01</string><string>10</string></wrap>"
        # deep copy: the original document is untouched
        assert DOC.root.child_elements("set1")[0].child_elements("item")


class TestTheorem12:
    def _result(self, inst):
        doc = instance_to_document(inst)
        out = evaluate_xquery(theorem12_query(), doc)
        assert len(out) == 1 and out[0].name == "result"
        return serialize(out[0])

    def test_equal_sets_give_true(self):
        rng = random.Random(2)
        inst = random_equal_instance(5, 5, rng)
        assert self._result(inst) == "<result><true/></result>"

    def test_unequal_sets_give_empty(self):
        inst = decode_instance(encode_instance(["00", "01"], ["00", "11"]))
        assert self._result(inst) == "<result/>"

    @given(
        st.lists(st.text(alphabet="01", min_size=1, max_size=3), min_size=1, max_size=5),
        st.lists(st.text(alphabet="01", min_size=1, max_size=3), min_size=1, max_size=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_decides_set_equality(self, xs, ys):
        k = min(len(xs), len(ys))
        inst = decode_instance(encode_instance(xs[:k], ys[:k]))
        expected = set(inst.first) == set(inst.second)
        produced = self._result(inst)
        assert (produced == "<result><true/></result>") == expected
