"""Executor adapters, content-addressed shards, ledger-driven resume.

Three properties carry this module:

* the adapter protocol is honest — capability flags match behaviour,
  and ``ShardExecutor`` is oracle-equal to ``SerialExecutor``;
* a shard plan is a partition — strided, disjoint, complete, with
  content-addressed keys that move iff the work moves;
* a resumed sweep is invisible — outcomes equal to an uninterrupted
  run and a ledger that strips byte-identical, for every way a run can
  be interrupted (mid-sweep kill, truncated final line, resumed twice).
"""

import json

import pytest

from repro.errors import ReproError
from repro.observability.ledger import (
    LedgerWriter,
    load_ledger,
    strip_nondeterministic,
)
from repro.parallel import (
    JOBS_ENV_VAR,
    BatchTask,
    ExecutorAdapter,
    ExecutorCapabilities,
    ParallelExecutor,
    SerialExecutor,
    ShardExecutor,
    default_jobs,
    load_resume_state,
    plan_shards,
    run_batch,
    shard_indices,
    sweep_fingerprint,
    task_fingerprint,
)


# -- module-level task bodies (workers import these by qualified name) ----


def square(x):
    return x * x


def draw(count, rng):
    return [rng.randrange(1000) for _ in range(count)]


def pair(x):
    return (x, x + 1)  # tuples are not journalable: resume must re-run


def logged_square(log_path, x):
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{x}\n")
    return x * x


def _tasks(n=9):
    return [BatchTask.call(square, i) for i in range(n)]


def _executions(log_path):
    try:
        with open(log_path, encoding="utf-8") as handle:
            return sum(1 for _ in handle)
    except FileNotFoundError:
        return 0


class TestAdapterProtocol:
    def test_capability_flags_match_behaviour(self):
        serial = SerialExecutor().capabilities
        assert not serial.parallel
        assert not serial.crash_containment
        assert not serial.sharded
        pool = ParallelExecutor(jobs=2).capabilities
        assert pool.parallel and pool.crash_containment
        assert not pool.sharded
        shard = ShardExecutor(3).capabilities
        assert shard.parallel and shard.sharded

    def test_capabilities_are_frozen(self):
        caps = SerialExecutor().capabilities
        with pytest.raises(AttributeError):
            caps.parallel = True

    def test_adapter_is_abstract(self):
        with pytest.raises(TypeError):
            ExecutorAdapter()

    def test_shard_topology(self):
        assert SerialExecutor().shard_topology() is None
        assert ParallelExecutor(jobs=2).shard_topology() is None
        assert ShardExecutor(4).shard_topology() == 4

    def test_explicit_executor_overrides_jobs(self):
        tasks = _tasks()
        serial = run_batch(tasks, jobs=1)
        routed = run_batch(tasks, jobs=7, executor=SerialExecutor())
        assert routed.values() == serial.values()

    def test_shard_executor_rejects_chunk_size(self):
        with pytest.raises(ReproError, match="chunk"):
            run_batch(
                _tasks(), executor=ShardExecutor(3), chunk_size=2
            )

    def test_shard_executor_validates_shards(self):
        with pytest.raises(ReproError):
            ShardExecutor(0)


class TestShardOracle:
    def test_shard_executor_equals_serial(self):
        tasks = [BatchTask.call(draw, 3, seeded=True) for _ in range(7)]
        serial = run_batch(tasks, seed=11)
        sharded = run_batch(
            tasks, seed=11, executor=ShardExecutor(3, jobs=1)
        )
        assert sharded.values() == serial.values()
        assert [o.index for o in sharded.outcomes] == list(range(len(tasks)))

    def test_more_shards_than_tasks(self):
        tasks = _tasks(2)
        serial = run_batch(tasks)
        sharded = run_batch(tasks, executor=ShardExecutor(5, jobs=1))
        assert sharded.values() == serial.values()


class TestShardPlan:
    def test_strided_partition_is_disjoint_and_complete(self):
        for total, shards in [(10, 3), (3, 3), (2, 5), (0, 2), (16, 1)]:
            ranges = [
                list(shard_indices(total, shards, i)) for i in range(shards)
            ]
            flat = sorted(i for r in ranges for i in r)
            assert flat == list(range(total))
            assert shard_indices(10, 3, 0)[:2] == range(0, 10, 3)[:2]

    def test_shard_indices_validation(self):
        with pytest.raises(ReproError):
            shard_indices(10, 0, 0)
        with pytest.raises(ReproError):
            shard_indices(10, 3, 3)
        with pytest.raises(ReproError):
            shard_indices(10, 3, -1)

    def test_plan_keys_are_content_addressed(self):
        tasks = _tasks()
        plan = plan_shards(tasks, shards=3, seed=5)
        again = plan_shards(tasks, shards=3, seed=5)
        assert [s.key for s in plan] == [s.key for s in again]
        assert len({s.key for s in plan}) == 3
        reseeded = plan_shards(tasks, shards=3, seed=6)
        assert [s.key for s in plan] != [s.key for s in reseeded]
        moved = plan_shards(_tasks(8), shards=3, seed=5)
        assert [s.key for s in plan] != [s.key for s in moved]

    def test_plan_covers_every_index_once(self):
        plan = plan_shards(_tasks(10), shards=3)
        indices = sorted(i for spec in plan for i in spec.task_indices)
        assert indices == list(range(10))
        for spec in plan:
            assert list(spec.task_indices) == list(
                shard_indices(10, 3, spec.index)
            )

    def test_unaddressable_task_refused_by_name(self):
        tasks = _tasks(3) + [BatchTask.call(lambda x: x, 1)]
        assert task_fingerprint(tasks[-1]) is None
        assert sweep_fingerprint(tasks) is None
        with pytest.raises(ReproError, match="task 3"):
            plan_shards(tasks, shards=2)

    def test_fingerprint_is_structural_not_positional(self):
        assert task_fingerprint(BatchTask.call(square, 4)) == task_fingerprint(
            BatchTask.call(square, 4)
        )
        assert task_fingerprint(BatchTask.call(square, 4)) != task_fingerprint(
            BatchTask.call(square, 5)
        )


class TestResume:
    """Every interruption shape lands on the same bytes."""

    def _interrupt(self, full_ledger, keep, broken_path):
        """A crashed-run ledger: header + the first ``keep`` outcomes,
        no sweep-end — exactly what a killed process leaves behind."""
        lines = full_ledger.read_text(encoding="utf-8").splitlines(True)
        kept, outcomes = [], 0
        for line in lines:
            kind = json.loads(line).get("kind")
            if kind == "sweep-end":
                continue
            if kind == "task-outcome":
                if outcomes == keep:
                    continue
                outcomes += 1
            kept.append(line)
        broken_path.write_text("".join(kept), encoding="utf-8")
        return broken_path

    def _run(self, tasks, path, **kwargs):
        with LedgerWriter(path) as ledger:
            result = run_batch(tasks, ledger=ledger, **kwargs)
        return result

    def test_resumed_run_is_bit_identical(self, tmp_path):
        tasks = [BatchTask.call(draw, 3, seeded=True) for _ in range(8)]
        baseline = self._run(tasks, tmp_path / "full.jsonl", seed=4)
        broken = self._interrupt(
            tmp_path / "full.jsonl", 5, tmp_path / "crashed.jsonl"
        )
        resumed = self._run(
            tasks, tmp_path / "resumed.jsonl", seed=4, resume_from=broken
        )
        assert resumed.values() == baseline.values()
        assert strip_nondeterministic(
            tmp_path / "resumed.jsonl"
        ) == strip_nondeterministic(tmp_path / "full.jsonl")

    def test_resume_skips_completed_work(self, tmp_path):
        log = str(tmp_path / "executions.log")
        tasks = [BatchTask.call(logged_square, log, i) for i in range(6)]
        baseline = self._run(tasks, tmp_path / "full.jsonl")
        assert _executions(log) == 6
        broken = self._interrupt(
            tmp_path / "full.jsonl", 4, tmp_path / "crashed.jsonl"
        )
        resumed = self._run(
            tasks, tmp_path / "resumed.jsonl", resume_from=broken
        )
        assert resumed.values() == baseline.values()
        assert _executions(log) == 6 + 2  # only the missing tail re-ran

    def test_resume_from_complete_ledger_runs_nothing(self, tmp_path):
        log = str(tmp_path / "executions.log")
        tasks = [BatchTask.call(logged_square, log, i) for i in range(5)]
        baseline = self._run(tasks, tmp_path / "full.jsonl")
        resumed = self._run(
            tasks,
            tmp_path / "resumed.jsonl",
            resume_from=tmp_path / "full.jsonl",
        )
        assert resumed.values() == baseline.values()
        assert _executions(log) == 5

    def test_resume_after_resume_is_idempotent(self, tmp_path):
        log = str(tmp_path / "executions.log")
        tasks = [BatchTask.call(logged_square, log, i) for i in range(6)]
        baseline = self._run(tasks, tmp_path / "full.jsonl")
        broken = self._interrupt(
            tmp_path / "full.jsonl", 3, tmp_path / "crashed.jsonl"
        )
        self._run(tasks, tmp_path / "resume1.jsonl", resume_from=broken)
        again = self._run(
            tasks,
            tmp_path / "resume2.jsonl",
            resume_from=tmp_path / "resume1.jsonl",
        )
        assert again.values() == baseline.values()
        assert _executions(log) == 6 + 3  # second resume re-ran nothing
        assert strip_nondeterministic(
            tmp_path / "resume2.jsonl"
        ) == strip_nondeterministic(tmp_path / "full.jsonl")

    def test_truncated_final_line_is_survivable(self, tmp_path):
        tasks = _tasks(6)
        baseline = self._run(tasks, tmp_path / "full.jsonl")
        text = (tmp_path / "full.jsonl").read_text(encoding="utf-8")
        lines = text.splitlines(True)
        # drop sweep-end, then leave half a task-outcome record behind —
        # the write the crash interrupted
        body, last = lines[:-2], lines[-2]
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text(
            "".join(body) + last[: len(last) // 2], encoding="utf-8"
        )
        state = load_resume_state(truncated)
        assert not state.finished
        assert len(state.completed) == len(tasks) - 1
        resumed = self._run(
            tasks, tmp_path / "resumed.jsonl", resume_from=truncated
        )
        assert resumed.values() == baseline.values()
        assert strip_nondeterministic(
            tmp_path / "resumed.jsonl"
        ) == strip_nondeterministic(tmp_path / "full.jsonl")

    def test_mismatched_fingerprint_is_refused(self, tmp_path):
        self._run(_tasks(6), tmp_path / "full.jsonl")
        with pytest.raises(ReproError, match="fingerprint"):
            self._run(
                [BatchTask.call(square, i + 100) for i in range(6)],
                tmp_path / "resumed.jsonl",
                resume_from=tmp_path / "full.jsonl",
            )

    def test_ledger_without_sweep_start_is_refused(self, tmp_path):
        (tmp_path / "empty.jsonl").write_text("", encoding="utf-8")
        with pytest.raises(ReproError, match="sweep-start"):
            run_batch(_tasks(3), resume_from=tmp_path / "empty.jsonl")

    def test_unjournalable_values_are_recomputed(self, tmp_path):
        tasks = [BatchTask.call(pair, i) for i in range(5)]
        baseline = self._run(tasks, tmp_path / "full.jsonl")
        records, _ = load_ledger(tmp_path / "full.jsonl")
        outcome_records = [r for r in records if r["kind"] == "task-outcome"]
        assert all("value" not in r for r in outcome_records)
        resumed = self._run(
            tasks,
            tmp_path / "resumed.jsonl",
            resume_from=tmp_path / "full.jsonl",
        )
        assert resumed.values() == baseline.values() == [
            (i, i + 1) for i in range(5)
        ]


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert default_jobs() == 3

    def test_env_override_must_be_positive_int(self, monkeypatch):
        for bad in ("0", "-2", "many"):
            monkeypatch.setenv(JOBS_ENV_VAR, bad)
            with pytest.raises(ReproError, match=JOBS_ENV_VAR):
                default_jobs()

    def test_without_override_counts_cores(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert default_jobs() >= 1


class TestAuditSharding:
    """K audit shards reassemble into the exact serial artifact."""

    def _shards(self, shards=3):
        from repro.observability.audit import run_audit_shard

        return [
            run_audit_shard(quick=True, shards=shards, shard_index=i)
            for i in range(shards)
        ]

    def test_collected_shards_byte_identical(self, tmp_path):
        from repro.observability.audit import (
            collect_audit_shards,
            run_contract_audit,
            write_audit_json,
        )

        serial = tmp_path / "serial.json"
        write_audit_json(run_contract_audit(quick=True), serial)
        collected = tmp_path / "collected.json"
        write_audit_json(collect_audit_shards(self._shards()), collected)
        assert collected.read_bytes() == serial.read_bytes()

    def test_collect_refuses_missing_and_duplicate_shards(self):
        from repro.observability.audit import collect_audit_shards

        artifacts = self._shards()
        with pytest.raises(ReproError, match="uncovered"):
            collect_audit_shards(artifacts[:2])
        with pytest.raises(ReproError):
            collect_audit_shards(artifacts[:2] + [artifacts[1]])

    def test_plan_covers_every_cell_once(self):
        from repro.observability.audit import (
            audit_sweep_digest,
            plan_audit_shards,
        )

        plans = plan_audit_shards(quick=True, shards=3)
        indices = sorted(
            cell["index"] for plan in plans for cell in plan["cells"]
        )
        assert indices == list(range(len(indices)))
        assert len({plan["key"] for plan in plans}) == 3
        assert all(
            plan["sweep"] == audit_sweep_digest(quick=True)
            for plan in plans
        )


class TestCompareParallelPayloads:
    """Wall-clock speedups only gate against the same silicon."""

    def _payload(self, cpu, audit=1.8, engine=1.5):
        return {
            "benchmark": "parallel",
            "cpu_count": cpu,
            "process_cpu_count": cpu,
            "jobs": 4,
            "topology": {"executor": "parallel", "jobs": 4, "shards": None},
            "sweeps": {
                "audit": {"speedup": audit},
                "engine": {"speedup": engine},
            },
        }

    def test_same_host_regression_detected(self):
        from repro.observability.report import compare_bench

        out = compare_bench(
            self._payload(4, audit=0.9), self._payload(4), tolerance=0.8
        )
        assert out["environment"]["comparable"]
        verdicts = {r["workload"]: r["verdict"] for r in out["rows"]}
        assert verdicts == {"audit": "regressed", "engine": "ok"}
        assert out["regressed"]

    def test_different_core_count_is_incomparable_not_regressed(self):
        from repro.observability.report import (
            compare_bench,
            render_comparison,
        )

        out = compare_bench(
            self._payload(1, audit=0.2, engine=0.2),
            self._payload(8),
            tolerance=0.8,
        )
        assert not out["environment"]["comparable"]
        assert all(r["verdict"] == "incomparable" for r in out["rows"])
        assert not out["regressed"]
        assert out["top"]["verdict"] == "incomparable"
        text = "\n".join(render_comparison(out))
        assert "different hosts" in text

    def test_baseline_without_sweeps_is_invalid(self):
        from repro.observability.report import compare_bench

        out = compare_bench(
            self._payload(4), {"benchmark": "parallel", "cpu_count": 4}
        )
        assert out["baseline_invalid"]
        assert out["top"]["verdict"] == "baseline-invalid"
        assert not out["regressed"]

    def test_summarize_counts_resumes(self, tmp_path):
        from repro.observability.report import summarize_ledgers

        path = tmp_path / "sweep.jsonl"
        with LedgerWriter(path) as ledger:
            run_batch(_tasks(4), ledger=ledger, label="demo")
        with LedgerWriter(tmp_path / "resumed.jsonl") as ledger:
            run_batch(
                _tasks(4), ledger=ledger, label="demo", resume_from=path
            )
        summary = summarize_ledgers([tmp_path / "resumed.jsonl"])
        assert summary["sweeps"]["demo"]["resumes"] == {
            "count": 1,
            "reused": 4,
        }


class TestRoutedResume:
    def test_fingerprint_trials_resume_matches(self, tmp_path):
        from repro.algorithms.fingerprint import (
            monte_carlo_fingerprint_trials,
        )

        path = tmp_path / "trials.jsonl"
        with LedgerWriter(path) as ledger:
            baseline = monte_carlo_fingerprint_trials(
                4, 8, 32, kind="near-miss", seed=3, k=3,
                trials_per_task=7, ledger=ledger,
            )
        lines = path.read_text(encoding="utf-8").splitlines(True)
        kept = [
            line
            for line in lines
            if json.loads(line).get("kind") != "sweep-end"
        ][:-2]
        broken = tmp_path / "crashed.jsonl"
        broken.write_text("".join(kept), encoding="utf-8")
        resumed = monte_carlo_fingerprint_trials(
            4, 8, 32, kind="near-miss", seed=3, k=3,
            trials_per_task=7, resume_from=broken,
        )
        assert resumed == baseline

    def test_census_through_explicit_executor(self):
        import functools

        from repro.listmachine.examples import tandem_compare_nlm
        from repro.lowerbounds.counting import enumerate_skeletons

        alphabet = frozenset({"00", "01", "10", "11"})
        factory = functools.partial(tandem_compare_nlm, alphabet, 2)
        nlm = factory()
        serial = enumerate_skeletons(nlm, sorted(alphabet), r=2)
        sharded = enumerate_skeletons(
            nlm,
            sorted(alphabet),
            r=2,
            jobs=2,
            machine_factory=factory,
            executor=ShardExecutor(2, jobs=1),
        )
        assert sharded == serial
