"""Tests for list machine semantics (Definitions 14, 24, 15; Lemma 25)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineError
from repro.listmachine import (
    Inp,
    LA,
    NLM,
    RA,
    acceptance_probability,
    initial_configuration,
    run_deterministic,
    run_with_choices,
    successor,
)
from repro.listmachine.examples import (
    coin_nlm,
    constant_accept_nlm,
    single_scan_parity_nlm,
    tandem_compare_nlm,
)
from repro.listmachine.run import find_good_choice_sequence

WORDS = frozenset({"00", "01", "10", "11"})


class TestTokens:
    def test_inp_equality_ignores_position(self):
        assert Inp("01", 0) == Inp("01", 5)
        assert hash(Inp("01", 0)) == hash(Inp("01", 5))
        assert Inp("01", 0) != Inp("10", 0)

    def test_brackets_are_singletons(self):
        assert LA is not RA
        assert repr(LA) == "⟨"


class TestDefinitionValidation:
    def test_needs_a_list(self):
        with pytest.raises(MachineError):
            constant_accept_nlm(WORDS, 2, t=0)

    def test_initial_state_must_exist(self):
        nlm = constant_accept_nlm(WORDS, 2)
        with pytest.raises(MachineError):
            NLM(
                t=2,
                m=2,
                input_alphabet=WORDS,
                choices=("c",),
                states=frozenset({"a"}),
                initial_state="missing",
                alpha=nlm.alpha,
                final_states=frozenset({"a"}),
                accepting_states=frozenset({"a"}),
            )

    def test_choices_must_be_distinct(self):
        nlm = constant_accept_nlm(WORDS, 2)
        with pytest.raises(MachineError):
            NLM(
                t=2,
                m=2,
                input_alphabet=WORDS,
                choices=("c", "c"),
                states=nlm.states,
                initial_state="acc",
                alpha=nlm.alpha,
                final_states=nlm.final_states,
                accepting_states=nlm.accepting_states,
            )

    def test_determinism_flag(self):
        assert constant_accept_nlm(WORDS, 2).is_deterministic
        assert not coin_nlm(WORDS, 2).is_deterministic


class TestInitialConfiguration:
    def test_input_list_layout(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        cfg = initial_configuration(nlm, ["01", "10"])
        assert len(cfg.lists) == 2
        assert cfg.lists[0] == (
            (LA, Inp("01", 0), RA),
            (LA, Inp("10", 1), RA),
        )
        assert cfg.lists[1] == ((LA, RA),)
        assert cfg.positions == (0, 0)
        assert cfg.directions == (+1, +1)

    def test_positions_recorded(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        cfg = initial_configuration(nlm, ["01", "01"])  # duplicate values
        assert cfg.lists[0][0][1].position == 0
        assert cfg.lists[0][1][1].position == 1

    def test_wrong_arity_rejected(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        with pytest.raises(MachineError):
            initial_configuration(nlm, ["01"])

    def test_alphabet_enforced(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        with pytest.raises(MachineError):
            initial_configuration(nlm, ["01", "0"])


class TestStepSemantics:
    def test_write_behind_both_heads(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        cfg = initial_configuration(nlm, ["01", "10"])
        nxt, moves = successor(nlm, cfg, "c")
        # list 1: head cell overwritten with y, head moved right
        assert nxt.positions[0] == 1
        assert moves == (+1, 0)
        y = nxt.lists[0][0]
        # y = a ⟨x1⟩ ⟨x2⟩ ⟨c⟩ — starts with the old state token
        from repro.listmachine import Choice, StateTok

        assert y[0] == StateTok("scan:0:0")
        assert Inp("01") in y
        assert Choice("c") in y
        # list 2: y inserted behind the head (head stays on ⟨⟩)
        assert nxt.lists[1] == (y, (LA, RA))
        assert nxt.positions[1] == 1
        assert nxt.head_cell(1) == (LA, RA)

    def test_pure_state_change_writes_nothing(self):
        # a machine whose first step moves nothing at all
        def alpha(state, cells, c):
            if state == "a":
                return ("b", ((+1, False), (+1, False)))
            return ("acc", ((+1, True), (+1, False)))

        nlm = NLM(
            t=2,
            m=1,
            input_alphabet=WORDS,
            choices=("c",),
            states=frozenset({"a", "b", "acc"}),
            initial_state="a",
            alpha=alpha,
            final_states=frozenset({"acc"}),
            accepting_states=frozenset({"acc"}),
        )
        cfg = initial_configuration(nlm, ["01"])
        nxt, moves = successor(nlm, cfg, "c")
        assert moves == (0, 0)
        assert nxt.lists == cfg.lists
        assert nxt.positions == cfg.positions
        assert nxt.state == "b"

    def test_clamping_at_right_end(self):
        nlm = single_scan_parity_nlm(WORDS, 1)
        cfg = initial_configuration(nlm, ["01"])
        # head on the only cell; (+1, True) must clamp to (+1, False)
        nxt, moves = successor(nlm, cfg, "c")
        assert nxt.state == "rej"  # parity of "01" is 1
        assert 0 <= nxt.positions[0] < len(nxt.lists[0])

    def test_successor_of_final_rejected(self):
        nlm = constant_accept_nlm(WORDS, 1)
        cfg = initial_configuration(nlm, ["01"])
        with pytest.raises(MachineError):
            successor(nlm, cfg, "c")

    def test_unknown_choice_rejected(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        cfg = initial_configuration(nlm, ["01", "10"])
        with pytest.raises(MachineError):
            successor(nlm, cfg, "zzz")


class TestRuns:
    def test_constant_accept(self):
        nlm = constant_accept_nlm(WORDS, 2)
        run = run_deterministic(nlm, ["01", "10"])
        assert run.accepts(nlm)
        assert run.length == 1

    def test_parity_machine_decides_xor(self):
        nlm = single_scan_parity_nlm(WORDS, 4)
        # last bits: 1,0 | 0,1 → xor 0 → accept
        assert run_deterministic(nlm, ["01", "10", "00", "11"]).accepts(nlm)
        # last bits: 1,0 | 0,0 → xor 1 → reject
        assert not run_deterministic(nlm, ["01", "10", "00", "10"]).accepts(nlm)

    def test_parity_machine_single_scan(self):
        nlm = single_scan_parity_nlm(WORDS, 4)
        run = run_deterministic(nlm, ["01", "10", "00", "11"])
        assert run.scan_count(nlm) == 1
        assert run.reversals_per_list(nlm) == (0, 0)

    @given(st.lists(st.sampled_from(sorted(WORDS)), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_parity_machine_property(self, values):
        nlm = single_scan_parity_nlm(WORDS, len(values))
        expected = sum(int(v[-1]) for v in values) % 2 == 0
        assert run_deterministic(nlm, values).accepts(nlm) == expected

    def test_tandem_decides_reversal(self):
        nlm = tandem_compare_nlm(WORDS, 2)
        assert run_deterministic(nlm, ["01", "10", "10", "01"]).accepts(nlm)
        assert not run_deterministic(nlm, ["01", "10", "01", "10"]).accepts(nlm)

    @given(
        st.lists(st.sampled_from(sorted(WORDS)), min_size=1, max_size=4),
        st.lists(st.sampled_from(sorted(WORDS)), min_size=1, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_tandem_property(self, first, second):
        m = min(len(first), len(second))
        first, second = first[:m], second[:m]
        nlm = tandem_compare_nlm(WORDS, m)
        expected = second == list(reversed(first))
        run = run_deterministic(nlm, first + second)
        assert run.accepts(nlm) == expected

    def test_tandem_two_scans(self):
        nlm = tandem_compare_nlm(WORDS, 3)
        run = run_deterministic(nlm, ["00", "01", "10", "10", "01", "00"])
        assert run.accepts(nlm)
        assert run.scan_count(nlm) == 2  # one reversal, on list 2

    def test_run_with_choices_matches_deterministic(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        values = ["01", "01"]
        det = run_deterministic(nlm, values)
        chosen = run_with_choices(nlm, values, ["c"] * 10)
        assert det.configurations == chosen.configurations

    def test_exhausted_choices(self):
        nlm = single_scan_parity_nlm(WORDS, 4)
        with pytest.raises(MachineError):
            run_with_choices(nlm, ["01"] * 4, ["c"])

    def test_nondeterministic_run_requires_choices(self):
        nlm = coin_nlm(WORDS, 1)
        with pytest.raises(MachineError):
            run_deterministic(nlm, ["01"])


class TestProbability:
    def test_coin_is_half(self):
        nlm = coin_nlm(WORDS, 2)
        assert acceptance_probability(nlm, ["01", "10"]) == Fraction(1, 2)

    def test_deterministic_is_zero_or_one(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        assert acceptance_probability(nlm, ["01", "01"]) == 1
        assert acceptance_probability(nlm, ["01", "00"]) == 0

    def test_lemma25_choice_counting(self):
        """Pr(M accepts v) = |{c ∈ C^ℓ : ρ_M(v,c) accepts}| / |C|^ℓ."""
        from itertools import product

        nlm = coin_nlm(WORDS, 1)
        values = ["01"]
        ell = 2
        accepting = sum(
            run_with_choices(nlm, values, seq).accepts(nlm)
            for seq in product(nlm.choices, repeat=ell)
        )
        assert Fraction(accepting, len(nlm.choices) ** ell) == acceptance_probability(
            nlm, values
        )


class TestLemma26:
    def test_deterministic_sequence(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        yes = [["01", "01"], ["10", "10"], ["11", "11"]]
        seq, accepted = find_good_choice_sequence(nlm, yes, r=1)
        assert len(accepted) == 3

    def test_nondeterministic_search(self):
        nlm = coin_nlm(WORDS, 1)
        yes = [["01"], ["10"]]
        seq, accepted = find_good_choice_sequence(nlm, yes, length=1)
        assert len(accepted) == 2  # the all-'h' sequence accepts everything

    def test_hopeless_machine_detected(self):
        # a machine accepting nothing cannot satisfy Lemma 26
        def alpha(state, cells, c):
            return ("rej", ((+1, False), (+1, False)))

        nlm = NLM(
            t=2,
            m=1,
            input_alphabet=WORDS,
            choices=("c",),
            states=frozenset({"s", "rej"}),
            initial_state="s",
            alpha=alpha,
            final_states=frozenset({"rej"}),
            accepting_states=frozenset(),
        )
        with pytest.raises(MachineError):
            find_good_choice_sequence(nlm, [["01"]], length=3)

    def test_requires_length_or_r(self):
        nlm = coin_nlm(WORDS, 1)
        with pytest.raises(MachineError):
            find_good_choice_sequence(nlm, [["01"]])
