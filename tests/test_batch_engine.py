"""The batch engine: lock-step lanes over structure-of-arrays tapes.

Lane identity is pinned against the compiled tier (PR 5's oracle for
this one): for every lane, the batch run's result, contained error and
tracker state must equal a serial ``compiled_engine`` run of the same
word.  The tests here cover the batch-specific machinery — lane
retirement and live-mask bookkeeping, empty and size-1 batches, column
growth/repacking, the fallback path for uncompilable machines, the
front-door ``engine=`` surface, program caching, and the metrics
counters.  The wide randomized sweep lives in
``tests/test_cross_engine.py`` (``TestFiveWayDifferential``).
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    MachineError,
    ReproError,
    ResourceError,
    StepBudgetExceeded,
)
from repro.extmem import ResourceBudget, ResourceTracker
from repro.machines import (
    BATCH_ENGINES,
    LaneOutcome,
    MachineBuilder,
    R,
    run_deterministic_batch,
    run_with_choices_batch,
)
from repro.machines import batch_engine, compiled_engine
from repro.machines.batch_engine import try_compile_batch
from repro.machines.library import (
    coin_flip_machine,
    copy_machine,
    copy_reverse_machine,
    equality_machine,
    guess_bit_machine,
    majority_machine,
    parity_machine,
)
from repro.machines.random_machines import random_terminating_tm

from tests.settings_profiles import QUICK_SETTINGS

DETERMINISTIC_LIBRARY = (
    copy_machine,
    parity_machine,
    copy_reverse_machine,
    majority_machine,
    equality_machine,
)


def _uncompilable_machine():
    """Multi-character symbols cannot be lowered to byte tables."""
    b = MachineBuilder("wide").start("q").accept("a")
    b.on("q", ("0",), "q", ("xx",), (R,))
    b.on("q", ("xx",), "a", ("xx",), (R,))
    return b.build()


def _compiled_twin(machine, word, step_limit=None, tracker=None):
    """The serial oracle for one lane: result or (type, message)."""
    kwargs = {}
    if step_limit is not None:
        kwargs["step_limit"] = step_limit
    if tracker is not None:
        kwargs["tracker"] = tracker
    try:
        return compiled_engine.run_deterministic(machine, word, **kwargs)
    except ReproError as exc:
        return (type(exc), str(exc))


def _assert_lane_matches(outcome, twin):
    if isinstance(twin, tuple):
        assert not outcome.ok
        assert (type(outcome.error), str(outcome.error)) == twin
    else:
        assert outcome.ok
        assert outcome.result.final == twin.final
        assert outcome.result.statistics == twin.statistics


class TestLaneIdentity:
    @pytest.mark.parametrize(
        "factory", DETERMINISTIC_LIBRARY, ids=lambda f: f.__name__
    )
    def test_library_batches_match_compiled(self, factory):
        machine = factory()
        words = ["", "0", "1", "01", "10", "0110", "1" * 40, "01" * 25]
        if factory is equality_machine:
            words += ["0110#0110", "0110#0111", "#", "01#0"]
        outcomes = run_deterministic_batch(machine, words)
        assert [o.index for o in outcomes] == list(range(len(words)))
        for word, outcome in zip(words, outcomes):
            _assert_lane_matches(outcome, _compiled_twin(machine, word))

    def test_empty_batch(self):
        assert run_deterministic_batch(copy_machine(), []) == []

    def test_size_one_batch(self):
        machine = equality_machine()
        (outcome,) = run_deterministic_batch(machine, ["0101#0101"])
        assert outcome.index == 0
        _assert_lane_matches(outcome, _compiled_twin(machine, "0101#0101"))

    def test_unwrap_returns_result_or_reraises(self):
        machine = equality_machine()
        good, bad = run_deterministic_batch(machine, ["0#0", "zz"])
        assert good.unwrap() is good.result
        assert not bad.ok
        with pytest.raises(MachineError, match="not in the alphabet"):
            bad.unwrap()

    def test_nondeterministic_machine_rejected_like_serial(self):
        machine = coin_flip_machine()
        with pytest.raises(MachineError) as batch_exc:
            run_deterministic_batch(machine, ["01"])
        with pytest.raises(MachineError) as serial_exc:
            compiled_engine.run_deterministic(machine, "01")
        assert str(batch_exc.value) == str(serial_exc.value)


class TestLaneRetirement:
    """Lanes retire independently; survivors keep exact state."""

    def test_mixed_lifetimes_and_contained_errors(self):
        # short lanes retire in the first rounds, the long ones keep the
        # lock-step loop alive, the malformed ones retire with contained
        # errors — and nobody's tapes bleed into a neighbour's column
        machine = equality_machine()
        words = [
            "",
            "0#0",
            "bad!",
            "01" * 30 + "#" + "01" * 30,
            "1#0",
            "x",
            "0" * 90 + "#" + "0" * 90,
            "#",
        ]
        outcomes = run_deterministic_batch(machine, words)
        errors = [o for o in outcomes if not o.ok]
        assert [o.index for o in errors] == [2, 5]
        for word, outcome in zip(words, outcomes):
            _assert_lane_matches(outcome, _compiled_twin(machine, word))

    def test_step_limit_retires_lanes_like_serial(self):
        machine = copy_machine()
        words = ["", "0", "0101", "0" * 30]
        for step_limit in (1, 3, 17, 1000):
            outcomes = run_deterministic_batch(
                machine, words, step_limit=step_limit
            )
            for word, outcome in zip(words, outcomes):
                _assert_lane_matches(
                    outcome, _compiled_twin(machine, word, step_limit)
                )

    def test_column_growth_repacks_only_live_lanes(self):
        # lane 0 retires before lane 1 forces the copy column to double:
        # the repack must not resurrect or corrupt the retired lane
        machine = copy_machine()
        words = ["1", "01" * 64, "0", "10" * 100]
        outcomes = run_deterministic_batch(machine, words)
        for word, outcome in zip(words, outcomes):
            _assert_lane_matches(outcome, _compiled_twin(machine, word))

    @given(
        batch=st.lists(
            st.text(alphabet="01#x", max_size=20), min_size=1, max_size=8
        )
    )
    @QUICK_SETTINGS
    def test_random_retirement_orders_match_compiled(self, batch):
        machine = equality_machine()
        outcomes = run_deterministic_batch(machine, batch)
        for word, outcome in zip(batch, outcomes):
            _assert_lane_matches(outcome, _compiled_twin(machine, word))


class TestTrackerLanes:
    def test_denied_lanes_match_serial_twins(self):
        machine = equality_machine()
        words = ["0#0", "0101#0101", "1#1", "01" * 8 + "#" + "01" * 8]
        for cap in (1, 2, 4, 6):
            trackers = [
                ResourceTracker(ResourceBudget(max_scans=cap)) for _ in words
            ]
            outcomes = run_deterministic_batch(
                machine, words, trackers=trackers
            )
            for word, outcome, tracker in zip(words, outcomes, trackers):
                twin_tracker = ResourceTracker(ResourceBudget(max_scans=cap))
                twin = _compiled_twin(machine, word, tracker=twin_tracker)
                _assert_lane_matches(outcome, twin)
                assert tracker.report() == twin_tracker.report()
                if not outcome.ok:
                    assert isinstance(outcome.error, ResourceError)

    def test_mixed_capped_and_uncapped_lanes(self):
        # a denial in lane 1 must not slow down or corrupt lanes 0 and 2
        machine = equality_machine()
        words = ["0101#0101", "0101#0101", "0101#0101"]
        trackers = [
            None,
            ResourceTracker(ResourceBudget(max_scans=1)),
            None,
        ]
        outcomes = run_deterministic_batch(machine, words, trackers=trackers)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[0].result.final == outcomes[2].result.final

    def test_tracker_length_mismatch_is_a_value_error(self):
        with pytest.raises(ValueError, match="trackers must match"):
            run_deterministic_batch(
                copy_machine(),
                ["0", "1"],
                trackers=[ResourceTracker(ResourceBudget())],
            )


class TestChoiceBatches:
    def test_choice_lanes_match_compiled_including_exhaustion(self):
        for factory in (coin_flip_machine, guess_bit_machine):
            machine = factory()
            lanes = [
                ("0101", list(range(1, 15))),
                ("", [1]),
                ("01", []),  # exhausts mid-run
                ("1", [7, 7, 7, 7, 7, 7, 7, 7, 7, 7]),
            ]
            words = [w for w, _ in lanes]
            choices = [c for _, c in lanes]
            outcomes = run_with_choices_batch(machine, words, choices)
            for (word, chs), outcome in zip(lanes, outcomes):
                try:
                    twin = compiled_engine.run_with_choices(
                        machine, word, chs
                    )
                except ReproError as exc:
                    twin = (type(exc), str(exc))
                _assert_lane_matches(outcome, twin)

    def test_choices_length_mismatch_is_a_value_error(self):
        with pytest.raises(ValueError, match="choices_list must match"):
            run_with_choices_batch(coin_flip_machine(), ["0", "1"], [[1]])


class TestFrontDoor:
    def test_batch_engines_tuple(self):
        assert BATCH_ENGINES == (
            "auto", "batch", "simd", "reference", "streaming", "compiled"
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_deterministic_batch(copy_machine(), ["0"], engine="warp")

    def test_reference_with_trackers_rejected(self):
        with pytest.raises(ValueError, match="does not bridge"):
            run_deterministic_batch(
                copy_machine(),
                ["0"],
                trackers=[ResourceTracker(ResourceBudget())],
                engine="reference",
            )

    @pytest.mark.parametrize(
        "engine", ("reference", "streaming", "compiled")
    )
    def test_pinned_tiers_agree_with_auto(self, engine):
        machine = equality_machine()
        words = ["0#0", "zz", "0110#0110", "01#10", ""]
        auto = run_deterministic_batch(machine, words)
        pinned = run_deterministic_batch(machine, words, engine=engine)
        assert [o.index for o in pinned] == [o.index for o in auto]
        for a, p in zip(auto, pinned):
            if a.ok:
                assert p.ok
                assert p.result.final == a.result.final
                assert p.result.statistics == a.result.statistics
            else:
                assert (type(p.error), str(p.error)) == (
                    type(a.error),
                    str(a.error),
                )


class TestCompilationAndFallback:
    def test_batch_program_is_cached_on_the_instance(self):
        machine = copy_machine()
        bp = try_compile_batch(machine)
        assert bp is not None
        assert try_compile_batch(machine) is bp
        assert machine.__dict__["_batch_program"] is bp

    def test_negative_verdict_is_cached_too(self):
        machine = _uncompilable_machine()
        assert try_compile_batch(machine) is None
        assert "_batch_program" in machine.__dict__
        assert try_compile_batch(machine) is None

    def test_uncompilable_machine_falls_back_lane_by_lane(self):
        machine = _uncompilable_machine()
        words = ["0", "", "00", "zz"]
        outcomes = run_deterministic_batch(machine, words)
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        from repro.machines import fast_engine

        for word, outcome in zip(words, outcomes):
            try:
                twin = fast_engine.run_deterministic(machine, word)
            except ReproError as exc:
                twin = (type(exc), str(exc))
            _assert_lane_matches(outcome, twin)


class TestObservability:
    def test_batch_counters_and_span(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.trace import Tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        machine = equality_machine()
        words = ["0#0", "zz", "0110#0110", "1#0"]
        trackers = [
            None,
            None,
            ResourceTracker(ResourceBudget(max_scans=1)),
            None,
        ]
        outcomes = run_deterministic_batch(
            machine, words, trackers=trackers,
            registry=registry, tracer=tracer,
        )
        name = machine.name
        dispatched = registry.counter("batch_lanes_dispatched")
        assert dispatched.value(machine=name) == 4
        retired = registry.counter("batch_lanes_retired").value(machine=name)
        denied = registry.counter("batch_lanes_denied").value(machine=name)
        failed = registry.counter("batch_lanes_failed").value(machine=name)
        assert retired == sum(1 for o in outcomes if o.ok)
        assert denied == sum(
            1 for o in outcomes if isinstance(o.error, ResourceError)
        )
        assert failed == 4 - retired - denied
        assert denied == 1  # the capped lane
        assert failed == 1  # the bad-symbol lane
        dispatches = registry.counter("batch_dispatches").value(machine=name)
        steps = registry.counter("batch_steps").value(machine=name)
        assert dispatches >= 1
        # macro sweeps make steps-per-dispatch the compression measure
        assert steps >= dispatches
        hist = registry.histogram("batch_macro_steps_per_dispatch")
        assert hist.count(machine=name) == 1
        (span,) = [
            s for s in tracer.spans() if s.name == f"batch-run:{name}"
        ]
        assert span.category == "engine"
        assert span.args["lanes"] == 4
        assert span.args["retired"] == retired
        assert span.args["denied"] == 1
        assert span.args["failed"] == 1
        assert span.args["dispatches"] == dispatches
        assert span.args["steps"] == steps

    def test_fallback_path_still_instruments(self):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        machine = _uncompilable_machine()
        run_deterministic_batch(machine, ["0", "00"], registry=registry)
        assert registry.counter("batch_lanes_dispatched").value(
            machine=machine.name
        ) == 2


class TestRandomMachines:
    @given(
        seed=st.integers(0, 2**16),
        tapes=st.integers(1, 3),
        batch=st.lists(st.text(alphabet="01", max_size=8), max_size=5),
        step_limit=st.sampled_from((5, 40, 10_000)),
    )
    @QUICK_SETTINGS
    def test_random_machine_lanes_match_compiled(
        self, seed, tapes, batch, step_limit
    ):
        machine = random_terminating_tm(seed, external_tapes=tapes, length=6)
        outcomes = run_deterministic_batch(
            machine, batch, step_limit=step_limit
        )
        for word, outcome in zip(batch, outcomes):
            _assert_lane_matches(
                outcome, _compiled_twin(machine, word, step_limit)
            )
