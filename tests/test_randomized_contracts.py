"""Tests for the randomized-contract checkers and the Theorem 13 protocol."""

import random
from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.machines import coin_flip_machine, guess_bit_machine, parity_machine
from repro.machines.randomized import (
    check_co_half_zero_rtm,
    check_half_zero_rtm,
)
from repro.problems import (
    encode_instance,
    random_equal_instance,
    random_unequal_instance,
)
from repro.queries.xpath.protocol import (
    CoRFilter,
    set_equality_protocol,
    t_tilde,
)


class TestRTMContracts:
    def test_deterministic_machine_is_valid_rtm(self):
        machine = parity_machine()
        report = check_half_zero_rtm(machine, ["11", "0000"], ["1", "001"])
        assert report.holds
        assert report.checked == 4

    def test_coin_machine_fails_the_no_side(self):
        # the coin machine accepts everything with probability 1/2:
        # fine on yes-words, fatal on no-words (Pr must be 0)
        machine = coin_flip_machine()
        report = check_half_zero_rtm(machine, ["0"], ["1"])
        assert not report.holds
        assert report.violations[0].expected == "no"
        assert report.violations[0].probability == Fraction(1, 2)

    def test_guess_bit_machine_on_matched_samples(self):
        # guess-bit accepts any nonempty word with probability exactly 1/2:
        # a valid RTM for the trivial "nonempty" property, invalid for
        # problems where some word must be rejected outright
        machine = guess_bit_machine()
        assert check_half_zero_rtm(machine, ["0", "1"], [""]).holds

    def test_co_contract(self):
        machine = coin_flip_machine()
        # co side: yes needs probability 1 — the coin machine fails there,
        # but passes the no side (1/2 ≤ 1/2)
        report = check_co_half_zero_rtm(machine, ["0"], ["1"])
        assert not report.holds
        assert all(v.expected == "yes" for v in report.violations)
        assert check_co_half_zero_rtm(machine, [], ["1", "0"]).holds


class TestTheorem13Protocol:
    def test_filter_contract_validated(self):
        with pytest.raises(ReproError):
            CoRFilter(rejection_probability=0.3)

    def test_exact_filter_one_run(self):
        rng = random.Random(0)
        exact = CoRFilter(rejection_probability=1.0)
        yes = random_equal_instance(5, 5, rng)
        assert t_tilde(yes, exact, rng)
        no = random_unequal_instance(5, 5, rng)
        if set(no.first) != set(no.second):
            assert not t_tilde(no, exact, rng)

    def test_no_false_positives_at_any_q(self):
        rng = random.Random(1)
        no = encode_instance(["00", "01"], ["00", "11"])
        for q in (0.5, 0.7, 1.0):
            f = CoRFilter(rejection_probability=q)
            for _ in range(50):
                assert not set_equality_protocol(
                    no, rng, filter_t=f, amplification=4
                ).accepted

    def test_yes_acceptance_rises_with_amplification(self):
        rng = random.Random(2)
        worst = CoRFilter(rejection_probability=0.5)
        yes = random_equal_instance(5, 5, rng)
        rates = {}
        for k in (1, 3):
            rates[k] = sum(
                set_equality_protocol(
                    yes, rng, filter_t=worst, amplification=k
                ).accepted
                for _ in range(300)
            )
        assert rates[3] > rates[1]
        assert rates[3] / 300 >= 0.5  # three runs clear 1/2, per the note

    def test_amplification_validated(self):
        with pytest.raises(ReproError):
            set_equality_protocol(
                "0#0#", random.Random(0), amplification=0
            )

    def test_default_amplification_meets_half(self):
        """The module default (3) satisfies the ≥ 1/2 contract even at the
        worst-case filter."""
        rng = random.Random(3)
        worst = CoRFilter(rejection_probability=0.5)
        yes = random_equal_instance(4, 4, rng)
        accepted = sum(
            set_equality_protocol(yes, rng, filter_t=worst).accepted
            for _ in range(400)
        )
        assert accepted / 400 >= 0.5
