"""Fuzzing the TM engine and the Lemma 16 machinery with random machines."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import MachineError
from repro.listmachine.simulate_tm import (
    block_trace,
    blocks_respect_lemma30,
    verify_block_reconstruction,
)
from repro.listmachine.simulating_machine import (
    SimulatingListMachine,
    verify_cell_contents,
    verify_cells_partition,
)
from repro.machines import run_deterministic
from repro.machines.execute import lemma3_run_length_bound
from repro.machines.random_machines import random_terminating_tm

seeds = st.integers(min_value=0, max_value=2**32 - 1)
inputs = st.text(alphabet="01", max_size=6)


def _run_or_skip(machine, word):
    """Run; treat left-end falls (generator artifacts) as skipped cases."""
    try:
        return run_deterministic(machine, word)
    except MachineError:
        assume(False)


class TestRandomTMs:
    @given(seeds, inputs)
    @settings(max_examples=100, deadline=None)
    def test_runs_terminate_and_respect_lemma3(self, seed, word):
        machine = random_terminating_tm(seed)
        run = _run_or_skip(machine, word)
        stats = run.statistics
        assert stats.length <= 10  # length-8 machines halt fast
        r = stats.external_scans(machine.external_tapes)
        s = stats.internal_space(machine.external_tapes)
        bound = lemma3_run_length_bound(
            max(1, len(word)), r, s, machine.external_tapes
        )
        assert stats.length <= bound

    @given(seeds, inputs)
    @settings(max_examples=80, deadline=None)
    def test_block_traces_consistent(self, seed, word):
        machine = random_terminating_tm(seed)
        run = _run_or_skip(machine, word)
        try:
            trace = block_trace(machine, word)
        except MachineError:
            assume(False)
        turns = sum(1 for e in trace.events if e.kind == "turn")
        actual = sum(
            trace.run.statistics.reversals_per_tape[: machine.external_tapes]
        )
        assert turns == actual
        assert blocks_respect_lemma30(trace, machine)
        assert verify_block_reconstruction(trace, machine, word)

    @given(seeds, inputs)
    @settings(max_examples=80, deadline=None)
    def test_simulating_machine_consistent(self, seed, word):
        machine = random_terminating_tm(seed)
        run = _run_or_skip(machine, word)
        try:
            sim = SimulatingListMachine(machine).run(word)
        except MachineError:
            assume(False)
        assert sim.accepted == run.accepts(machine)
        assert verify_cells_partition(sim)
        assert verify_cell_contents(sim, machine, word)
        assert sum(sim.reversals_per_list) == sum(
            run.statistics.reversals_per_tape[: machine.external_tapes]
        )

    @given(seeds, inputs)
    @settings(max_examples=40, deadline=None)
    def test_internal_tapes_supported(self, seed, word):
        machine = random_terminating_tm(
            seed, external_tapes=1, internal_tapes=1, length=6
        )
        run = _run_or_skip(machine, word)
        assert run.statistics.internal_space(1) >= 1
