"""Tests for Theorem 8(b): certificates and their deterministic verifier."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    Certificate,
    build_certificate,
    nondeterministic_accepts,
    verify_certificate,
)
from repro.algorithms.nondet_verify import (
    certificate_length,
    find_matching_permutation,
)
from repro.errors import EncodingError
from repro.problems import (
    CHECK_SORT,
    MULTISET_EQUALITY,
    SET_EQUALITY,
    encode_instance,
    random_checksort_instance,
    random_equal_instance,
    random_unequal_instance,
)

small_words = st.lists(st.text(alphabet="01", min_size=1, max_size=4), max_size=5)


class TestMatching:
    def test_finds_permutation_when_equal(self):
        inst = encode_instance(["0", "1", "0"], ["1", "0", "0"])
        pi = find_matching_permutation(inst)
        assert pi is not None
        from repro.problems import decode_instance

        d = decode_instance(inst)
        assert all(d.first[i] == d.second[pi[i]] for i in range(3))

    def test_none_when_unequal(self):
        assert find_matching_permutation("0#0#0#1#") is None


class TestCertificates:
    def test_build_requires_permutation(self):
        with pytest.raises(EncodingError):
            build_certificate("0#1#1#0#", [0, 0])

    def test_copies_formula(self):
        inst = encode_instance(["01"], ["01"])  # m=1, N=6
        cert = build_certificate(inst, [0])
        assert cert.copies == certificate_length(1, 6) == 1 + 6 * 1

    def test_honest_certificate_verifies(self):
        rng = random.Random(0)
        inst = random_equal_instance(4, 4, rng)
        pi = find_matching_permutation(inst)
        cert = build_certificate(inst, pi)
        assert verify_certificate(inst, cert).accepted

    def test_wrong_permutation_rejected(self):
        inst = encode_instance(["0", "1"], ["0", "1"])
        bad = build_certificate(inst, [1, 0])  # pairs 0↔1: bits disagree
        result = verify_certificate(inst, bad)
        assert not result.accepted
        assert "mismatch" in result.reason

    def test_wrong_copy_count_rejected(self):
        inst = encode_instance(["0"], ["0"])
        cert = build_certificate(inst, [0])
        tampered = Certificate(cert.pi, cert.first, cert.second, cert.copies - 1)
        assert not verify_certificate(inst, tampered).accepted

    def test_foreign_values_rejected(self):
        # certificate rows claim different input values than the real input
        inst = encode_instance(["0"], ["0"])
        cert = build_certificate(inst, [0])
        forged = Certificate(cert.pi, ("1",), ("1",), cert.copies)
        result = verify_certificate(inst, forged)
        assert not result.accepted
        assert "input" in result.reason

    def test_duplicate_pi_rejected(self):
        inst = encode_instance(["0", "0"], ["0", "0"])
        cert = build_certificate(inst, [0, 1])
        forged = Certificate((0, 0), cert.first, cert.second, cert.copies)
        assert not verify_certificate(inst, forged).accepted

    def test_row_access_bounds(self):
        cert = build_certificate("0#0#", [0])
        with pytest.raises(EncodingError):
            cert.row(cert.copies)

    def test_verifier_uses_one_backward_scan(self):
        inst = encode_instance(["01", "10"], ["10", "01"])
        cert = build_certificate(inst, find_matching_permutation(inst))
        result = verify_certificate(inst, cert)
        assert result.accepted
        # backward walk over two freshly written tapes: ≤ 1 reversal each
        assert result.report.reversals <= 2


class TestExistentialAcceptance:
    def test_multiset_yes_no(self):
        rng = random.Random(1)
        yes = random_equal_instance(5, 4, rng)
        no = random_unequal_instance(5, 4, rng)
        assert nondeterministic_accepts(yes)
        assert not nondeterministic_accepts(no)

    def test_checksort(self):
        rng = random.Random(2)
        yes = random_checksort_instance(5, 4, rng, yes=True)
        no = random_checksort_instance(5, 4, rng, yes=False)
        assert nondeterministic_accepts(yes, problem="check-sort")
        assert not nondeterministic_accepts(no, problem="check-sort")

    def test_set_equality(self):
        inst = encode_instance(["0", "0", "1"], ["1", "1", "0"])
        assert nondeterministic_accepts(inst, problem="set-equality")
        assert not nondeterministic_accepts(inst, problem="multiset-equality")

    @given(small_words, small_words, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_matches_references(self, first, second, seed):
        k = min(len(first), len(second))
        inst = encode_instance(first[:k], second[:k])
        assert nondeterministic_accepts(inst) == MULTISET_EQUALITY(inst)
        assert (
            nondeterministic_accepts(inst, problem="set-equality")
            == SET_EQUALITY(inst)
        )
        assert (
            nondeterministic_accepts(inst, problem="check-sort")
            == CHECK_SORT(inst)
        )
