"""The result cache: fingerprints, the store, routing, and the gates.

The two load-bearing guarantees tested here:

1. **byte-identity** — the audit JSON (and every other cached surface)
   is byte-for-byte the same with the cache on, off, cold or warm; the
   cache may only ever change *when* work happens, never *what* comes
   out;
2. **robustness** — corrupt, truncated, wrong-schema, mis-keyed and
   concurrently-written entries are quarantined and recomputed, never
   served and never fatal.
"""

import json
import os
import pickle

import pytest
from hypothesis import given, strategies as st

from tests.settings_profiles import QUICK_SETTINGS
from repro.cache import (
    CacheKey,
    ResultStore,
    SCHEMA_VERSION,
    canonical_json,
    code_fingerprint,
    compose_key,
    digest_of,
    machine_fingerprint,
    normalize_seed,
    recompute_payload,
    register_recompute,
    supported_kinds,
    verify_entries,
)
from repro.errors import ReproError
from repro.machines.library import copy_machine, equality_machine
from repro.machines.tm import Transition, TuringMachine
from repro.observability.audit import (
    AUDIT_CELL_KIND,
    CONTRACTS,
    ContractSpec,
    QUICK_SWEEP,
    audit_cell_key,
    check_from_payload,
    check_to_payload,
    run_audit_cell,
    run_contract_audit,
)
from repro.observability.metrics import MetricsRegistry
from repro.parallel import BatchTask, run_batch


# -- module-level batch bodies (must pickle for the parallel executor) ------


def racing_writer(root, tag):
    """Many tasks, one key: every writer computes and stores the same
    payload; the rename race must end with one valid entry."""
    store = ResultStore(root)
    key = compose_key("race-test", target="shared")
    return store.get_or_compute(key, lambda: {"value": 42}, engine=tag)


# -- canonical serialisation ------------------------------------------------


class TestCanonicalJson:
    def test_key_order_never_matters(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert digest_of({"b": 1, "a": 2}) == digest_of({"a": 2, "b": 1})

    def test_compact_ascii(self):
        text = canonical_json({"k": ["é", 1]})
        assert " " not in text
        assert "\\u" in text  # non-ASCII is escaped, never raw

    @QUICK_SETTINGS
    @given(
        st.dictionaries(
            st.text(max_size=8),
            st.one_of(st.integers(), st.text(max_size=8), st.booleans()),
            max_size=6,
        )
    )
    def test_digest_is_construction_order_independent(self, payload):
        shuffled = dict(reversed(list(payload.items())))
        assert digest_of(payload) == digest_of(shuffled)


class TestMachineFingerprint:
    def test_name_is_excluded(self):
        machine = equality_machine()
        renamed = TuringMachine(
            name="totally-different-name",
            states=machine.states,
            alphabet=machine.alphabet,
            transitions=machine.transitions,
            initial_state=machine.initial_state,
            final_states=machine.final_states,
            accepting_states=machine.accepting_states,
            external_tapes=machine.external_tapes,
            internal_tapes=machine.internal_tapes,
        )
        assert machine_fingerprint(machine) == machine_fingerprint(renamed)

    def test_transition_declaration_order_is_canonicalised(self):
        machine = copy_machine()
        reordered = TuringMachine(
            name=machine.name,
            states=machine.states,
            alphabet=machine.alphabet,
            transitions=tuple(reversed(machine.transitions)),
            initial_state=machine.initial_state,
            final_states=machine.final_states,
            accepting_states=machine.accepting_states,
            external_tapes=machine.external_tapes,
            internal_tapes=machine.internal_tapes,
        )
        assert machine_fingerprint(machine) == machine_fingerprint(reordered)

    def test_definition_changes_change_the_fingerprint(self):
        assert machine_fingerprint(copy_machine()) != machine_fingerprint(
            equality_machine()
        )

    def test_memo_is_stripped_from_pickles(self):
        machine = copy_machine()
        fp = machine_fingerprint(machine)
        assert "_machine_fingerprint" in machine.__dict__
        clone = pickle.loads(pickle.dumps(machine))
        assert "_machine_fingerprint" not in clone.__dict__
        assert machine_fingerprint(clone) == fp


class TestKeyComposition:
    def test_seed_normalises_at_the_choke_point(self):
        assert normalize_seed(7) == normalize_seed("7")
        int_key = compose_key("k", seed=7, n=3)
        str_key = compose_key("k", seed="7", n=3)
        assert int_key.digest == str_key.digest

    @QUICK_SETTINGS
    @given(st.integers(min_value=-(10 ** 9), max_value=10 ** 9))
    def test_int_and_str_seeds_always_collide(self, seed):
        assert (
            compose_key("k", seed=seed).digest
            == compose_key("k", seed=str(seed)).digest
        )

    def test_code_version_rides_in_every_key(self):
        key = compose_key("k", x=1)
        assert dict(key.components)["code"] == code_fingerprint()

    def test_component_order_never_matters(self):
        assert (
            compose_key("k", a=1, b=2).digest
            == compose_key("k", b=2, a=1).digest
        )

    def test_kind_component_is_allowed(self):
        # the entry kind is positional-only, so components may use the name
        key = compose_key("fingerprint-mc", kind="near-miss", m=4)
        assert dict(key.components)["kind"] == "near-miss"
        assert key.kind == "fingerprint-mc"

    def test_machines_become_fingerprints(self):
        machine = copy_machine()
        key = compose_key("k", machine=machine)
        assert dict(key.components)["machine"] == machine_fingerprint(machine)

    def test_structures_collapse_to_digests(self):
        key = compose_key("k", words=["a", "b"])
        assert dict(key.components)["words"] == digest_of(["a", "b"])

    def test_unserialisable_component_raises(self):
        with pytest.raises(ReproError):
            compose_key("k", bad=object())

    def test_empty_kind_raises(self):
        with pytest.raises(ReproError):
            compose_key("")

    def test_provenance_is_timestamp_free_and_deterministic(self):
        a = compose_key("k", x=1).provenance(engine="e")
        b = compose_key("k", x=1).provenance(engine="e")
        assert canonical_json(a) == canonical_json(b)
        assert set(a) == {"kind", "components", "repro_version", "engine"}


# -- the store --------------------------------------------------------------


class TestResultStore:
    def test_roundtrip_and_shard_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        key = compose_key("t", x=1)
        assert store.lookup(key) is None  # cold miss
        store.store(key, {"answer": 7}, engine="test")
        assert store.lookup(key) == {"answer": 7}
        path = store.path_for(key)
        assert path.exists()
        assert path.parent.parent == tmp_path
        assert len(path.parent.name) == 2  # two-hex-digit shard
        assert path.parent.name + path.stem == key.digest
        assert store.counter_snapshot() == {
            "hits": 1, "misses": 1, "writes": 1, "invalid": 0,
        }

    def test_entries_are_canonical_bytes(self, tmp_path):
        # two processes writing the same key must produce identical files;
        # same-process double-store is the degenerate case of that race
        store = ResultStore(tmp_path)
        key = compose_key("t", x=1)
        store.store(key, {"b": 1, "a": 2})
        first = store.path_for(key).read_bytes()
        ResultStore(tmp_path).store(key, {"a": 2, "b": 1})
        assert store.path_for(key).read_bytes() == first

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(compose_key("t", x=1), [1, 2, 3])
        strays = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert strays == []

    def test_unserialisable_payload_raises(self, tmp_path):
        with pytest.raises(ReproError):
            ResultStore(tmp_path).store(compose_key("t"), {"x": object()})

    def test_get_or_compute_runs_once(self, tmp_path):
        store = ResultStore(tmp_path)
        key = compose_key("t", x=1)
        calls = []

        def compute():
            calls.append(1)
            return {"v": 1}

        assert store.get_or_compute(key, compute) == {"v": 1}
        assert store.get_or_compute(key, compute) == {"v": 1}
        assert len(calls) == 1

    def test_counters_surface_in_a_shared_registry(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path, registry=registry)
        store.lookup(compose_key("t", x=1))
        snapshot = registry.snapshot()
        assert "cache_misses_total" in snapshot
        assert "cache_hits_total" in snapshot

    def test_stats_and_gc(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(3):
            store.store(compose_key("t", x=i), {"v": i})
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["entries_by_kind"] == {"t": 3}
        assert stats["stale_version_entries"] == 0
        assert stats["total_bytes"] > 0
        # age one entry to a prior code version: stats flags it, gc drops
        # it (its key embeds the old code component — unreachable forever)
        path, entry = next(iter(store.entries()))
        entry["provenance"]["repro_version"] = "0.0.0-ancient"
        path.write_text(canonical_json(entry) + "\n")
        assert store.stats()["stale_version_entries"] == 1
        report = store.gc()
        assert report == {
            "removed": 1,
            "kept": 2,
            "reclaimed_bytes": pytest.approx(report["reclaimed_bytes"]),
        }
        assert store.stats()["entries"] == 2

    def test_gc_sweeps_quarantine_and_strays(self, tmp_path):
        store = ResultStore(tmp_path)
        key = compose_key("t", x=1)
        store.store(key, {"v": 1})
        store.path_for(key).write_text("{ corrupt")
        assert store.lookup(key) is None  # quarantines
        (tmp_path / "ab").mkdir(exist_ok=True)
        (tmp_path / "ab" / ".stray.123.tmp").write_text("half a write")
        report = store.gc()
        assert report["kept"] == 0
        assert report["removed"] == 2  # quarantined file + stray tmp
        assert not (tmp_path / "quarantine").exists() or not any(
            (tmp_path / "quarantine").iterdir()
        )


class TestAdversarialEntries:
    """Every way an entry can be unusable ends in quarantine-and-recompute."""

    def _poisoned(self, tmp_path, text):
        store = ResultStore(tmp_path)
        key = compose_key("t", x=1)
        store.store(key, {"v": 1})
        store.path_for(key).write_text(text)
        return store, key

    def _assert_recovers(self, store, key):
        assert store.lookup(key) is None
        assert store.invalid == 1
        assert store.misses == 1
        # the bad file is out of the read path, parked in quarantine
        assert not store.path_for(key).exists()
        assert any((store.root / "quarantine").iterdir())
        # recompute-and-overwrite restores service
        assert store.get_or_compute(key, lambda: {"v": 1}) == {"v": 1}
        assert store.lookup(key) == {"v": 1}

    def test_corrupt_json(self, tmp_path):
        store, key = self._poisoned(tmp_path, "{ not json at all")
        self._assert_recovers(store, key)

    def test_truncated_file(self, tmp_path):
        store = ResultStore(tmp_path)
        key = compose_key("t", x=1)
        store.store(key, {"v": 1})
        path = store.path_for(key)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        self._assert_recovers(store, key)

    def test_wrong_schema_version(self, tmp_path):
        store = ResultStore(tmp_path)
        key = compose_key("t", x=1)
        store.store(key, {"v": 1})
        path = store.path_for(key)
        entry = json.loads(path.read_text())
        entry["schema"] = SCHEMA_VERSION + 1
        path.write_text(canonical_json(entry))
        self._assert_recovers(store, key)

    def test_key_mismatch(self, tmp_path):
        # an entry whose recorded key disagrees with its address is never
        # served: content addressing is verified on read, not trusted
        store = ResultStore(tmp_path)
        key = compose_key("t", x=1)
        store.store(key, {"v": 1})
        path = store.path_for(key)
        entry = json.loads(path.read_text())
        entry["key"] = "0" * 64
        path.write_text(canonical_json(entry))
        self._assert_recovers(store, key)

    def test_non_dict_entry(self, tmp_path):
        store, key = self._poisoned(tmp_path, '["a", "list"]')
        self._assert_recovers(store, key)

    def test_unreadable_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        key = compose_key("t", x=1)
        store.store(key, {"v": 1})
        store.path_for(key).write_bytes(b"\xff\xfe\x00garbage")
        self._assert_recovers(store, key)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_concurrent_writers_racing_one_key(self, tmp_path, jobs):
        tasks = [
            BatchTask.call(racing_writer, str(tmp_path), i) for i in range(6)
        ]
        values = run_batch(tasks, jobs=jobs, label="race").values()
        assert values == [{"value": 42}] * 6
        # exactly one valid entry; nothing quarantined by the race
        store = ResultStore(tmp_path)
        assert store.stats()["entries"] == 1
        assert store.stats()["quarantined_files"] == 0
        assert store.lookup(compose_key("race-test", target="shared")) == {
            "value": 42
        }


# -- audit routing: the byte-identity gate ----------------------------------


def _audit_json(**kwargs):
    run = run_contract_audit(quick=True, **kwargs)
    return json.dumps(run.to_json_dict(), indent=2, sort_keys=False)


class TestCachedAudit:
    def test_cache_on_off_cold_warm_all_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        plain = _audit_json()
        cold = _audit_json(cache=store)
        assert store.counter_snapshot()["misses"] == 24  # 8 contracts x 3
        assert store.counter_snapshot()["writes"] == 24
        warm = _audit_json(cache=store)
        assert store.counter_snapshot()["hits"] == 24
        assert store.counter_snapshot()["writes"] == 24  # nothing rewritten
        assert cold == plain
        assert warm == plain

    def test_warm_audit_runs_zero_engine_steps(self, tmp_path):
        """With every cell cached, no contract runner may even be called.

        The real contracts warm the store; a tripwired twin (same names,
        runner that explodes) then audits against it — any cell that
        misses the cache detonates, so passing proves the warm sweep is
        lookups all the way down.
        """
        store = ResultStore(tmp_path)
        run_contract_audit(quick=True, cache=store)

        def detonate(m, n, rng, sink):
            raise AssertionError("engine ran on a warm cache")

        tripwired = [
            ContractSpec(name=s.name, description=s.description, run=detonate)
            for s in CONTRACTS
        ]
        warm = run_contract_audit(
            quick=True, contracts=tripwired, cache=store
        )
        assert warm.ok
        assert store.counter_snapshot()["hits"] == 24

    def test_partial_warmth_runs_only_the_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = CONTRACTS[0]
        # pre-warm one cell by hand
        m, n = QUICK_SWEEP[0]
        check = run_audit_cell(spec, m, n)
        store.store(audit_cell_key(spec.name, m, n), check_to_payload(check))
        run = run_contract_audit(quick=True, contracts=[spec], cache=store)
        assert store.counter_snapshot()["hits"] == 1
        assert store.counter_snapshot()["misses"] == len(QUICK_SWEEP) - 1
        assert json.dumps(run.to_json_dict()) == json.dumps(
            run_contract_audit(quick=True, contracts=[spec]).to_json_dict()
        )

    def test_parallel_cached_audit_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        plain = _audit_json()
        assert _audit_json(cache=store, jobs=2) == plain
        assert _audit_json(cache=store, jobs=2) == plain  # warm too

    def test_check_payload_roundtrip_is_lossless(self):
        spec = CONTRACTS[0]
        check = run_audit_cell(spec, 4, 12)
        clone = check_from_payload(check_to_payload(check))
        assert clone == check
        assert clone.to_json_dict() == check.to_json_dict()

    def test_poisoned_cell_recomputes_instead_of_crashing(self, tmp_path):
        store = ResultStore(tmp_path)
        plain = _audit_json()
        _audit_json(cache=store)
        # corrupt one stored cell; the audit must quarantine, recompute
        # and still write the same bytes
        path, _entry = next(iter(store.entries()))
        path.write_text("truncated {")
        assert _audit_json(cache=store) == plain
        assert store.counter_snapshot()["invalid"] == 1


# -- Monte Carlo trial-block routing ----------------------------------------


class TestCachedTrials:
    def test_cold_warm_and_plain_agree(self, tmp_path):
        from repro.algorithms.fingerprint import monte_carlo_fingerprint_trials

        store = ResultStore(tmp_path)
        plain = monte_carlo_fingerprint_trials(8, 8, 48, seed=5)
        cold = monte_carlo_fingerprint_trials(8, 8, 48, seed=5, cache=store)
        warm = monte_carlo_fingerprint_trials(8, 8, 48, seed=5, cache=store)
        assert cold == plain
        assert warm == plain
        assert store.counter_snapshot()["hits"] == 3  # 48/16 blocks
        assert store.counter_snapshot()["writes"] == 3

    def test_extending_the_sweep_reuses_whole_blocks(self, tmp_path):
        from repro.algorithms.fingerprint import monte_carlo_fingerprint_trials

        store = ResultStore(tmp_path)
        monte_carlo_fingerprint_trials(8, 8, 32, seed=5, cache=store)
        extended = monte_carlo_fingerprint_trials(
            8, 8, 64, seed=5, cache=store
        )
        # both 32-trial blocks hit; the two new ones compute
        assert store.counter_snapshot()["hits"] == 2
        assert store.counter_snapshot()["writes"] == 4
        assert extended == monte_carlo_fingerprint_trials(8, 8, 64, seed=5)

    def test_int_and_str_seeds_share_entries(self, tmp_path):
        from repro.algorithms.fingerprint import monte_carlo_fingerprint_trials

        store = ResultStore(tmp_path)
        a = monte_carlo_fingerprint_trials(8, 8, 16, seed=9, cache=store)
        b = monte_carlo_fingerprint_trials(8, 8, 16, seed="9", cache=store)
        assert a == b
        assert store.counter_snapshot() == {
            "hits": 1, "misses": 1, "writes": 1, "invalid": 0,
        }


# -- provenance-driven verification -----------------------------------------


class TestVerifyEntries:
    def test_audit_entries_verify_ok(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = CONTRACTS[0]
        check = run_audit_cell(spec, 4, 12)
        store.store(
            audit_cell_key(spec.name, 4, 12),
            check_to_payload(check),
            engine="audit",
        )
        report = verify_entries(store)
        assert (report["checked"], report["ok"]) == (1, 1)
        assert report["mismatched"] == 0

    def test_tampered_payload_is_flagged(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = CONTRACTS[0]
        check = run_audit_cell(spec, 4, 12)
        key = audit_cell_key(spec.name, 4, 12)
        store.store(key, check_to_payload(check))
        path = store.path_for(key)
        entry = json.loads(path.read_text())
        entry["payload"]["report"]["scans"] += 1  # silent corruption
        path.write_text(canonical_json(entry))
        report = verify_entries(store)
        assert report["mismatched"] == 1
        assert report["results"][0]["verdict"] == "MISMATCH"

    def test_unknown_kind_is_unsupported_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(compose_key("alien-kind", x=1), {"v": 1})
        report = verify_entries(store)
        assert report["unsupported"] == 1
        assert report["mismatched"] == 0

    def test_recompute_registry(self):
        assert "audit-cell" in supported_kinds()
        assert "fingerprint-mc" in supported_kinds()
        with pytest.raises(ReproError):
            recompute_payload({"kind": "no-such-kind", "components": {}})
        register_recompute("test-kind", lambda components: components["x"])
        try:
            assert recompute_payload(
                {"kind": "test-kind", "components": {"x": 3}}
            ) == 3
        finally:
            from repro.cache import recompute as _recompute_mod

            _recompute_mod._RECOMPUTERS.pop("test-kind", None)

    def test_mc_entries_verify_ok(self, tmp_path):
        from repro.algorithms.fingerprint import monte_carlo_fingerprint_trials

        store = ResultStore(tmp_path)
        monte_carlo_fingerprint_trials(8, 8, 16, seed=2, cache=store)
        report = verify_entries(store)
        assert report["ok"] == report["checked"] == 1


# -- the bench --compare guard ----------------------------------------------


class TestCompareGuard:
    @staticmethod
    def _compare(gate, baseline_summary, rows=()):
        import sys
        from pathlib import Path

        scripts = str(Path(__file__).resolve().parent.parent / "scripts")
        sys.path.insert(0, scripts)
        try:
            from bench_to_json import compare_against_baseline
        finally:
            sys.path.remove(scripts)
        return compare_against_baseline(
            gate, list(rows), {"summary": baseline_summary, "rows": []}, 0.8
        )

    def test_zero_baseline_cannot_vacuously_pass(self):
        verdict = self._compare(0.01, {"top_n_speedup": 0})
        assert verdict["baseline_invalid"]
        assert verdict["floor"] is None
        assert not verdict["regressed"]

    def test_negative_and_missing_and_nonnumeric_baselines(self):
        for summary in ({"top_n_speedup": -3.0}, {}, {"top_n_speedup": "5"},
                        {"top_n_speedup": True}):
            verdict = self._compare(4.0, summary)
            assert verdict["baseline_invalid"], summary
            assert verdict["baseline_top_n_speedup"] is None

    def test_valid_baseline_still_gates(self):
        regressed = self._compare(3.0, {"top_n_speedup": 5.0})
        assert not regressed["baseline_invalid"]
        assert regressed["floor"] == 4.0
        assert regressed["regressed"]
        fine = self._compare(4.5, {"top_n_speedup": 5.0})
        assert not fine["regressed"]

    def test_new_engines_are_informational(self):
        verdict = self._compare(
            5.0, {"top_n_speedup": 5.0}, rows=[{"engine": "batch"}]
        )
        assert verdict["engines_new"] == ["batch"]
        assert not verdict["regressed"]


# -- the CLI ----------------------------------------------------------------


class TestCacheCli:
    def test_stats_gc_verify(self, tmp_path, capsys):
        from repro.__main__ import main

        store = ResultStore(tmp_path)
        spec = CONTRACTS[0]
        check = run_audit_cell(spec, 4, 12)
        store.store(audit_cell_key(spec.name, 4, 12), check_to_payload(check))

        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["entries_by_kind"] == {AUDIT_CELL_KIND: 1}

        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
        assert "1 ok" in capsys.readouterr().out

        assert main(["cache", "gc", "--dir", str(tmp_path)]) == 0
        assert "kept 1" in capsys.readouterr().out

    def test_audit_cache_flags(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "audit.json"
        stats_path = tmp_path / "stats.json"
        cache_dir = tmp_path / "cache"
        argv = [
            "audit", "--quick", "--output", str(out),
            "--cache", str(cache_dir), "--cache-stats", str(stats_path),
        ]
        assert main(argv) == 0
        cold = out.read_bytes()
        assert json.loads(stats_path.read_text())["misses"] == 24
        assert main(argv) == 0
        assert out.read_bytes() == cold
        counters = json.loads(stats_path.read_text())
        assert counters == {
            "hits": 24, "misses": 0, "writes": 0, "invalid": 0,
        }
        capsys.readouterr()
        # --no-cache forces the scratch path and writes the same bytes
        assert main(
            ["audit", "--quick", "--output", str(out), "--no-cache",
             "--cache", str(cache_dir)]
        ) == 0
        assert out.read_bytes() == cold
