"""Tests for relational algebra: AST, reference and streaming evaluators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryEvaluationError
from repro.problems import (
    SET_EQUALITY,
    random_equal_instance,
    random_unequal_instance,
)
from repro.queries.relational import (
    AttrEquals,
    AttrEqualsAttr,
    Database,
    Difference,
    NaturalJoin,
    Product,
    Projection,
    Relation,
    RelationRef,
    Rename,
    Schema,
    Selection,
    StreamingEvaluator,
    Union,
    evaluate,
    set_equality_database,
    symmetric_difference_query,
)
from repro.queries.relational.algebra import operator_count
from repro.queries.relational.streaming import streaming_scan_budget


def sample_db():
    return Database(
        {
            "R": Relation.create(("a", "b"), [("1", "x"), ("2", "y"), ("3", "x")]),
            "S": Relation.create(("b", "c"), [("x", "u"), ("y", "v")]),
            "T": Relation.create(("a", "b"), [("1", "x"), ("9", "z")]),
        }
    )


class TestSchema:
    def test_duplicate_attributes_rejected(self):
        with pytest.raises(QueryEvaluationError):
            Schema(("a", "a"))

    def test_index_of_unknown(self):
        with pytest.raises(QueryEvaluationError):
            Schema(("a",)).index_of("z")

    def test_relation_arity_checked(self):
        with pytest.raises(QueryEvaluationError):
            Relation.create(("a",), [("1", "2")])

    def test_database_lookup(self):
        db = sample_db()
        assert "R" in db
        with pytest.raises(QueryEvaluationError):
            db["missing"]

    def test_total_size(self):
        db = sample_db()
        assert db.total_size() == 6 + 4 + 4


class TestReferenceEvaluator:
    def test_selection(self):
        db = sample_db()
        out = evaluate(Selection(AttrEquals("b", "x"), RelationRef("R")), db)
        assert out.tuples == {("1", "x"), ("3", "x")}

    def test_selection_attr_attr(self):
        db = Database(
            {"U": Relation.create(("a", "b"), [("1", "1"), ("1", "2")])}
        )
        out = evaluate(Selection(AttrEqualsAttr("a", "b"), RelationRef("U")), db)
        assert out.tuples == {("1", "1")}

    def test_projection_collapses_duplicates(self):
        db = sample_db()
        out = evaluate(Projection(("b",), RelationRef("R")), db)
        assert out.tuples == {("x",), ("y",)}

    def test_union_difference(self):
        db = sample_db()
        union = evaluate(Union(RelationRef("R"), RelationRef("T")), db)
        assert union.cardinality == 4
        diff = evaluate(Difference(RelationRef("R"), RelationRef("T")), db)
        assert diff.tuples == {("2", "y"), ("3", "x")}

    def test_product(self):
        db = Database(
            {
                "A": Relation.create(("a",), [("1",), ("2",)]),
                "B": Relation.create(("b",), [("x",)]),
            }
        )
        out = evaluate(Product(RelationRef("A"), RelationRef("B")), db)
        assert out.tuples == {("1", "x"), ("2", "x")}

    def test_product_rejects_overlap(self):
        db = sample_db()
        with pytest.raises(QueryEvaluationError):
            evaluate(Product(RelationRef("R"), RelationRef("T")), db)

    def test_natural_join(self):
        db = sample_db()
        out = evaluate(NaturalJoin(RelationRef("R"), RelationRef("S")), db)
        assert out.schema.attributes == ("a", "b", "c")
        assert out.tuples == {
            ("1", "x", "u"),
            ("3", "x", "u"),
            ("2", "y", "v"),
        }

    def test_rename(self):
        db = sample_db()
        out = evaluate(Rename((("a", "key"),), RelationRef("R")), db)
        assert out.schema.attributes == ("key", "b")

    def test_union_arity_mismatch(self):
        db = Database(
            {
                "A": Relation.create(("a",), [("1",)]),
                "B": Relation.create(("b", "c"), [("x", "y")]),
            }
        )
        with pytest.raises(QueryEvaluationError):
            evaluate(Union(RelationRef("A"), RelationRef("B")), db)

    def test_operator_count(self):
        assert operator_count(symmetric_difference_query()) == 7


class TestSymmetricDifference:
    def test_empty_iff_equal(self):
        rng = random.Random(0)
        query = symmetric_difference_query()
        for _ in range(10):
            yes = random_equal_instance(6, 5, rng)
            no = random_unequal_instance(6, 5, rng)
            assert evaluate(query, set_equality_database(yes)).is_empty
            assert not evaluate(query, set_equality_database(no)).is_empty

    def test_decides_set_equality_not_multiset(self):
        from repro.problems import encode_instance

        inst = encode_instance(["0", "0", "1"], ["1", "1", "0"])
        assert SET_EQUALITY(inst)
        assert evaluate(
            symmetric_difference_query(), set_equality_database(inst)
        ).is_empty


class TestStreamingEvaluator:
    def _check(self, expr, db):
        reference = evaluate(expr, db)
        streaming = StreamingEvaluator(db)
        out = streaming.evaluate(expr)
        assert out.tuples == reference.tuples
        assert out.schema.attributes == reference.schema.attributes
        return streaming.report()

    def test_all_operators_match_reference(self):
        db = sample_db()
        exprs = [
            RelationRef("R"),
            Selection(AttrEquals("b", "x"), RelationRef("R")),
            Projection(("b",), RelationRef("R")),
            Union(RelationRef("R"), RelationRef("T")),
            Difference(RelationRef("R"), RelationRef("T")),
            Difference(RelationRef("T"), RelationRef("R")),
            NaturalJoin(RelationRef("R"), RelationRef("S")),
            Rename((("a", "key"),), RelationRef("R")),
        ]
        for expr in exprs:
            self._check(expr, db)

    def test_product_streaming(self):
        db = Database(
            {
                "A": Relation.create(("a",), [(str(i),) for i in range(5)]),
                "B": Relation.create(("b",), [(str(i * 10),) for i in range(7)]),
            }
        )
        report = self._check(Product(RelationRef("A"), RelationRef("B")), db)
        assert report.scans <= streaming_scan_budget(
            Product(RelationRef("A"), RelationRef("B")), db.total_size()
        )

    def test_empty_product(self):
        db = Database(
            {
                "A": Relation.create(("a",), []),
                "B": Relation.create(("b",), [("x",)]),
            }
        )
        self._check(Product(RelationRef("A"), RelationRef("B")), db)

    def test_symmetric_difference_streaming(self):
        rng = random.Random(1)
        query = symmetric_difference_query()
        for yes in (True, False):
            inst = (
                random_equal_instance(8, 6, rng)
                if yes
                else random_unequal_instance(8, 6, rng)
            )
            db = set_equality_database(inst)
            ev = StreamingEvaluator(db)
            out = ev.evaluate(query)
            assert out.is_empty == SET_EQUALITY(inst)

    def test_scan_budget_logarithmic(self):
        """Theorem 11(a): reversals stay within O(c_Q · log N)."""
        rng = random.Random(2)
        query = symmetric_difference_query()
        for m in (8, 64, 256):
            inst = random_equal_instance(m, 8, rng)
            db = set_equality_database(inst)
            ev = StreamingEvaluator(db)
            ev.evaluate(query)
            assert ev.report().scans <= streaming_scan_budget(
                query, db.total_size()
            )

    def test_scan_growth_is_sublinear(self):
        rng = random.Random(3)
        query = symmetric_difference_query()
        scans = {}
        for m in (16, 256):
            inst = random_equal_instance(m, 8, rng)
            ev = StreamingEvaluator(set_equality_database(inst))
            ev.evaluate(query)
            scans[m] = ev.report().scans
        # 16× data → reversals grow at most ~2× (log-like), nowhere near 16×
        assert scans[256] <= 2.5 * scans[16]

    @given(
        st.lists(st.text(alphabet="01", min_size=1, max_size=4), max_size=8),
        st.lists(st.text(alphabet="01", min_size=1, max_size=4), max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_streaming_difference_property(self, first, second):
        db = Database(
            {
                "A": Relation.create(("v",), [(x,) for x in first]),
                "B": Relation.create(("v",), [(x,) for x in second]),
            }
        )
        expr = Difference(RelationRef("A"), RelationRef("B"))
        assert StreamingEvaluator(db).evaluate(expr).tuples == evaluate(
            expr, db
        ).tuples
