"""Unit and property tests for repro._util."""

import pytest
from hypothesis import given, strategies as st

from repro import _util as u


class TestLogs:
    def test_ceil_log2_exact_powers(self):
        assert u.ceil_log2(1) == 0
        assert u.ceil_log2(2) == 1
        assert u.ceil_log2(4) == 2
        assert u.ceil_log2(1024) == 10

    def test_ceil_log2_between_powers(self):
        assert u.ceil_log2(3) == 2
        assert u.ceil_log2(5) == 3
        assert u.ceil_log2(1025) == 11

    def test_floor_log2(self):
        assert u.floor_log2(1) == 0
        assert u.floor_log2(3) == 1
        assert u.floor_log2(8) == 3

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            u.ceil_log2(0)
        with pytest.raises(ValueError):
            u.floor_log2(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_ceil_floor_consistency(self, x):
        c, f = u.ceil_log2(x), u.floor_log2(x)
        assert 2**f <= x <= 2**c
        assert c - f in (0, 1)


class TestPowersOfTwo:
    def test_powers(self):
        assert u.is_power_of_two(1)
        assert u.is_power_of_two(2)
        assert u.is_power_of_two(64)

    def test_non_powers(self):
        assert not u.is_power_of_two(0)
        assert not u.is_power_of_two(3)
        assert not u.is_power_of_two(-4)


class TestBinary:
    def test_to_binary_pads(self):
        assert u.to_binary(5, 4) == "0101"
        assert u.to_binary(0, 3) == "000"

    def test_to_binary_overflow(self):
        with pytest.raises(ValueError):
            u.to_binary(8, 3)

    def test_from_binary(self):
        assert u.from_binary("0101") == 5
        assert u.from_binary("0") == 0

    def test_from_binary_rejects_garbage(self):
        with pytest.raises(ValueError):
            u.from_binary("10a")
        with pytest.raises(ValueError):
            u.from_binary("")

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_roundtrip(self, x):
        assert u.from_binary(u.to_binary(x, 20)) == x

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_reverse_binary_involution(self, x):
        assert u.reverse_binary(u.reverse_binary(x, 12), 12) == x


class TestMonotone:
    def test_lis_simple(self):
        assert u.longest_monotone_subsequence_length([1, 3, 2, 4]) == 3

    def test_lds_simple(self):
        assert (
            u.longest_monotone_subsequence_length([1, 3, 2, 4], decreasing=True) == 2
        )

    def test_empty(self):
        assert u.longest_monotone_subsequence_length([]) == 0
        assert u.longest_monotone_subsequence([]) == []

    def test_witness_is_increasing_subsequence(self):
        seq = [5, 1, 4, 2, 3, 9, 7]
        wit = u.longest_monotone_subsequence(seq)
        assert len(wit) == u.longest_monotone_subsequence_length(seq)
        assert all(a < b for a, b in zip(wit, wit[1:]))
        # witness is a genuine subsequence
        it = iter(seq)
        assert all(any(x == y for y in it) for x in wit)

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=40))
    def test_witness_matches_length(self, seq):
        wit = u.longest_monotone_subsequence(seq)
        assert len(wit) == u.longest_monotone_subsequence_length(seq)

    @given(st.permutations(list(range(12))))
    def test_erdos_szekeres(self, perm):
        # any permutation of 12 = (4-1)(4-1)+3 elements has a monotone
        # subsequence of length 4
        inc = u.longest_monotone_subsequence_length(perm)
        dec = u.longest_monotone_subsequence_length(perm, decreasing=True)
        assert max(inc, dec) >= 4


class TestPermutations:
    def test_inverse(self):
        assert u.inverse_permutation([2, 0, 1]) == [1, 2, 0]

    def test_inverse_rejects_nonperm(self):
        with pytest.raises(ValueError):
            u.inverse_permutation([0, 0, 1])
        with pytest.raises(ValueError):
            u.inverse_permutation([0, 3])

    @given(st.permutations(list(range(8))))
    def test_inverse_roundtrip(self, perm):
        inv = u.inverse_permutation(perm)
        assert u.compose_permutations(perm, inv) == list(range(8))
        assert u.compose_permutations(inv, perm) == list(range(8))

    def test_argsort(self):
        assert u.argsort([30, 10, 20]) == [1, 2, 0]


class TestMisc:
    def test_chunks(self):
        assert list(u.chunks("abcdef", 4)) == ["abcd", "ef"]

    def test_chunks_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(u.chunks([1], 0))

    def test_lcm_range(self):
        assert u.lcm_range(1) == 1
        assert u.lcm_range(4) == 12
        assert u.lcm_range(6) == 60

    def test_run_length_encode(self):
        assert u.run_length_encode("aabccc") == [("a", 2), ("b", 1), ("c", 3)]
        assert u.run_length_encode([]) == []

    def test_pairwise_disjoint(self):
        assert u.pairwise_disjoint([frozenset({1}), frozenset({2, 3})])
        assert not u.pairwise_disjoint([frozenset({1, 2}), frozenset({2})])

    def test_bits_needed(self):
        assert u.bits_needed(0) == 1
        assert u.bits_needed(1) == 1
        assert u.bits_needed(255) == 8
