"""Tests for repro.problems: encoding, deciders, generators, reductions."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.lowerbounds import phi_permutation
from repro.problems import (
    CHECK_SORT,
    DISJOINT_SETS,
    MULTISET_EQUALITY,
    SET_EQUALITY,
    CheckPhiFamily,
    Instance,
    IntervalFamily,
    check_phi_problem,
    check_phi_to_short,
    decode_instance,
    encode_instance,
    instance_size,
    near_miss_instance,
    random_checksort_instance,
    random_equal_instance,
    random_unequal_instance,
    short_variant,
    sort_strings,
)
from repro.problems.reductions import (
    check_phi_to_short_on_tapes,
    reduction_layout,
    verify_length_linear,
)

bitstrings = st.text(alphabet="01", max_size=8)


class TestEncoding:
    def test_encode_basic(self):
        assert encode_instance(["01", "1"], ["1", "01"]) == "01#1#1#01#"

    def test_empty_instance(self):
        inst = decode_instance("")
        assert inst.m == 0 and inst.size == 0

    def test_decode_basic(self):
        inst = decode_instance("01#1#1#01#")
        assert inst.first == ("01", "1")
        assert inst.second == ("1", "01")

    def test_size_formula(self):
        # N = 2m + Σ|v|: m=2, strings 2+1+1+2 = 6 → N = 10
        assert instance_size("01#1#1#01#") == 10
        assert instance_size("01#1#1#01#") == len("01#1#1#01#")

    def test_uniform_length_size(self):
        inst = decode_instance("00#11#01#10#")
        # N = 2m(n+1) with m=2, n=2
        assert inst.size == 2 * 2 * 3

    @pytest.mark.parametrize(
        "bad",
        ["01", "0#1#1#", "0a#0a#", "#0#1", "0#1#2#3#"],
    )
    def test_decode_rejects_malformed(self, bad):
        with pytest.raises(EncodingError):
            decode_instance(bad)

    def test_empty_values_are_legal(self):
        inst = decode_instance("##")
        assert inst.first == ("",) and inst.second == ("",)

    def test_halves_must_match(self):
        with pytest.raises(EncodingError):
            encode_instance(["0"], [])
        with pytest.raises(EncodingError):
            Instance(("0",), ())

    def test_values_must_be_binary(self):
        with pytest.raises(EncodingError):
            encode_instance(["0x"], ["0x"])

    @given(
        st.lists(bitstrings, max_size=6).flatmap(
            lambda first: st.tuples(
                st.just(first),
                st.lists(bitstrings, min_size=len(first), max_size=len(first)),
            )
        )
    )
    def test_roundtrip(self, halves):
        first, second = halves
        text = encode_instance(first, second)
        inst = decode_instance(text)
        assert list(inst.first) == first
        assert list(inst.second) == second
        assert inst.encode() == text

    def test_swapped(self):
        inst = decode_instance("0#1#")
        assert inst.swapped().first == ("1",)


class TestDeciders:
    def test_set_equality(self):
        assert SET_EQUALITY("0#1#1#0#")
        assert SET_EQUALITY("0#0#1#0#1#1#")  # sets ignore multiplicity
        assert not SET_EQUALITY("0#1#1#1#")

    def test_multiset_equality(self):
        assert MULTISET_EQUALITY("0#1#1#0#")
        assert not MULTISET_EQUALITY("0#0#1#0#1#1#")

    def test_set_vs_multiset_disagree_exactly_on_multiplicity(self):
        inst = "00#00#11#00#11#11#"
        assert SET_EQUALITY(inst) and not MULTISET_EQUALITY(inst)

    def test_check_sort(self):
        assert CHECK_SORT("10#01#01#10#")
        assert not CHECK_SORT("10#01#10#01#")
        assert CHECK_SORT("")  # trivially sorted

    def test_check_sort_respects_duplicates(self):
        assert CHECK_SORT("1#0#1#0#1#1#")
        with pytest.raises(EncodingError):
            CHECK_SORT("1#0#1#0#1#")  # odd count → malformed
        # wrong multiset, right order
        assert not CHECK_SORT("1#0#1#0#0#1#")

    def test_lexicographic_convention(self):
        assert sort_strings(["1", "0", "00", "01"]) == ["0", "00", "01", "1"]

    def test_disjoint_sets(self):
        assert DISJOINT_SETS("0#1#")
        assert not DISJOINT_SETS("0#0#")

    def test_short_variant_promise(self):
        short = short_variant(MULTISET_EQUALITY, c=2)
        # m = 4 → limit 2·log2(4) = 4
        ok = encode_instance(["0000"] * 4, ["0000"] * 4)
        too_long = encode_instance(["00000"] * 4, ["00000"] * 4)
        assert short.is_valid_instance(ok)
        assert not short.is_valid_instance(too_long)
        with pytest.raises(EncodingError):
            short(too_long)

    def test_short_variant_requires_c_ge_2(self):
        with pytest.raises(EncodingError):
            short_variant(SET_EQUALITY, c=1)

    def test_check_phi_problem(self):
        phi = phi_permutation(4)  # [0, 2, 1, 3]
        problem = check_phi_problem(phi)
        u = ["00", "01", "10", "11"]
        first = [u[phi[i]] for i in range(4)]
        assert problem(encode_instance(first, u))
        assert not problem(encode_instance(u, u))

    def test_check_phi_rejects_wrong_m(self):
        problem = check_phi_problem(phi_permutation(4))
        with pytest.raises(EncodingError):
            problem("0#0#")


class TestGenerators:
    def test_equal_instances_are_yes(self):
        rng = random.Random(0)
        for _ in range(20):
            inst = random_equal_instance(6, 5, rng)
            assert MULTISET_EQUALITY(inst) and SET_EQUALITY(inst)

    def test_unequal_instances_are_no(self):
        rng = random.Random(1)
        for _ in range(20):
            inst = random_unequal_instance(6, 5, rng)
            assert not MULTISET_EQUALITY(inst)

    def test_near_miss_is_no_but_close(self):
        rng = random.Random(2)
        for _ in range(20):
            inst = near_miss_instance(5, 6, rng)
            assert not MULTISET_EQUALITY(inst)
            diff = sum(
                a != b
                for v, w in zip(sorted(inst.first), sorted(inst.second))
                for a, b in zip(v, w)
            )
            assert diff >= 1

    def test_checksort_instances(self):
        rng = random.Random(3)
        for _ in range(10):
            assert CHECK_SORT(random_checksort_instance(6, 4, rng, yes=True))
            assert not CHECK_SORT(random_checksort_instance(6, 4, rng, yes=False))

    def test_unequal_requires_m_positive(self):
        with pytest.raises(EncodingError):
            random_unequal_instance(0, 4, random.Random(0))


class TestIntervalFamily:
    def test_partition(self):
        fam = IntervalFamily(4, 4)
        assert fam.interval_size == 4
        assert fam.interval_of("0000") == 0
        assert fam.interval_of("0100") == 1
        assert fam.interval_of("1111") == 3

    def test_enumerate_covers_everything(self):
        fam = IntervalFamily(4, 3)
        seen = [v for j in range(4) for v in fam.enumerate_interval(j)]
        assert len(seen) == 8 and len(set(seen)) == 8

    def test_sample_lands_in_interval(self):
        fam = IntervalFamily(8, 6)
        rng = random.Random(4)
        for j in range(8):
            for _ in range(5):
                assert fam.interval_of(fam.sample(j, rng)) == j

    def test_m_must_divide(self):
        with pytest.raises(EncodingError):
            IntervalFamily(3, 4)

    def test_wrong_length_value(self):
        fam = IntervalFamily(2, 4)
        with pytest.raises(EncodingError):
            fam.interval_of("00")


class TestCheckPhiFamily:
    def test_yes_instances_satisfy_promise_and_decision(self):
        fam = CheckPhiFamily(8, 6)
        rng = random.Random(5)
        problem = check_phi_problem(fam.phi)
        for _ in range(10):
            inst = fam.random_yes(rng)
            assert fam.in_promise(inst)
            assert fam.is_yes(inst)
            assert problem(inst)
            # CHECK-φ yes-instances are yes for (multi)set equality too
            assert MULTISET_EQUALITY(inst) and SET_EQUALITY(inst)

    def test_no_instances_stay_in_promise(self):
        fam = CheckPhiFamily(8, 6)
        rng = random.Random(6)
        for _ in range(10):
            inst = fam.random_no(rng)
            assert fam.in_promise(inst)
            assert not fam.is_yes(inst)
            assert not MULTISET_EQUALITY(inst)

    def test_on_checkphi_family_all_three_problems_coincide(self):
        # Section 8: "For inputs that are instances of CHECK-φ, the problems
        # SET-EQUALITY, MULTISET-EQUALITY, CHECK-SORT and CHECK-φ coincide."
        fam = CheckPhiFamily(8, 6)
        rng = random.Random(7)
        for _ in range(20):
            inst = fam.random_yes(rng) if rng.random() < 0.5 else fam.random_no(rng)
            answers = {
                SET_EQUALITY(inst),
                MULTISET_EQUALITY(inst),
                fam.is_yes(inst),
            }
            assert len(answers) == 1
            # CHECK-SORT applies to the instance with sorted second half:
            # v'_j ∈ I_j means the second half is sorted ascending already
            assert list(inst.second) == sorted(inst.second)
            assert CHECK_SORT(inst) == fam.is_yes(inst)

    def test_instance_from_choices_validates(self):
        fam = CheckPhiFamily(4, 4)
        with pytest.raises(EncodingError):
            fam.instance_from_choices(["0000", "0000", "1000", "1100"])

    def test_tiny_intervals_cannot_produce_no(self):
        fam = CheckPhiFamily(4, 2)  # interval size 1
        with pytest.raises(EncodingError):
            fam.random_no(random.Random(0))


class TestReduction:
    def _roundtrip(self, m, n, seed, yes):
        fam = CheckPhiFamily(m, n)
        rng = random.Random(seed)
        inst = fam.random_yes(rng) if yes else fam.random_no(rng)
        out, layout = check_phi_to_short(inst, fam.phi)
        return inst, out, layout, fam

    @pytest.mark.parametrize("yes", [True, False])
    def test_preserves_answer_multiset(self, yes):
        inst, out, _, fam = self._roundtrip(8, 16, 11, yes)
        assert MULTISET_EQUALITY(out) == fam.is_yes(inst)
        assert SET_EQUALITY(out) == fam.is_yes(inst)

    @pytest.mark.parametrize("yes", [True, False])
    def test_preserves_answer_checksort(self, yes):
        inst, out, _, fam = self._roundtrip(8, 16, 12, yes)
        # second half of f(v) is sorted by construction …
        assert list(out.second) == sorted(out.second)
        # … so CHECK-SORT(f(v)) ⇔ multiset equality ⇔ CHECK-φ(v)
        assert CHECK_SORT(out) == fam.is_yes(inst)

    def test_output_is_short(self):
        _, out, layout, _ = self._roundtrip(8, 16, 13, True)
        short = short_variant(MULTISET_EQUALITY, c=layout.short_constant())
        assert short.is_valid_instance(out)

    def test_length_linear(self):
        inst, out, layout, _ = self._roundtrip(16, 64, 14, True)
        assert verify_length_linear(inst, out, layout)

    def test_layout_matches_paper_for_n_m_cubed(self):
        # with n = m³ the index width is 3·log m (paper's BIN')
        layout = reduction_layout(8, 8**3)
        assert layout.block_length == 3
        assert layout.blocks_per_value == -(-512 // 3)
        assert layout.index_width == 8  # ceil(log2(171)) = 8 ≤ 3·log m = 9

    def test_streaming_version_matches(self):
        fam = CheckPhiFamily(8, 16)
        inst = fam.random_yes(random.Random(15))
        expected, _ = check_phi_to_short(inst, fam.phi)
        tape, _, tracker = check_phi_to_short_on_tapes(inst, fam.phi)
        produced = tape.snapshot()
        assert produced == list(expected.first) + list(expected.second)
        # O(1) reversals: two forward scans over the input (1 rewind)
        assert tracker.report().reversals <= 2

    def test_reduction_rejects_mixed_lengths(self):
        inst = Instance(("00", "000"), ("00", "000"))
        with pytest.raises(EncodingError):
            check_phi_to_short(inst, [0, 1])

    def test_reduction_rejects_bad_phi(self):
        inst = Instance(("00", "11"), ("00", "11"))
        with pytest.raises(EncodingError):
            check_phi_to_short(inst, [0, 0])
