"""Tests for the adversarial constructions and skeleton counting."""

import random

import pytest

from repro.algorithms import multiset_equality_fingerprint, one_pass_multiset_test
from repro.errors import MachineError, ReproError
from repro.listmachine.examples import coin_nlm, single_scan_parity_nlm
from repro.lowerbounds.adversary import (
    fool_all_baselines,
    padded_collision_instance,
    sum_collision_instance,
    xor_collision_instance,
    xor_sum_collision_instance,
)
from repro.lowerbounds.counting import (
    enumerate_skeletons,
    skeletons_independent_of_value_length,
)
from repro.problems import MULTISET_EQUALITY


class TestCollisions:
    @pytest.mark.parametrize("n", [2, 8, 16, 64])
    def test_xor_collision(self, n):
        inst = xor_collision_instance(n)
        assert not MULTISET_EQUALITY(inst)
        assert one_pass_multiset_test(inst, sketch="xor").accepted

    @pytest.mark.parametrize("n", [2, 8, 16])
    def test_sum_collision(self, n):
        inst = sum_collision_instance(n)
        assert not MULTISET_EQUALITY(inst)
        assert one_pass_multiset_test(inst, sketch="sum").accepted

    @pytest.mark.parametrize("n", [2, 8, 16])
    def test_xor_sum_collision(self, n):
        inst = xor_sum_collision_instance(n)
        assert not MULTISET_EQUALITY(inst)
        assert one_pass_multiset_test(inst, sketch="xor+sum").accepted

    def test_minimum_length_enforced(self):
        with pytest.raises(ReproError):
            xor_collision_instance(1)

    def test_padded_collision(self):
        rng = random.Random(0)
        inst = padded_collision_instance(8, 6, rng)
        assert inst.m == 6
        assert not MULTISET_EQUALITY(inst)
        assert one_pass_multiset_test(inst, sketch="xor+sum").accepted

    def test_fool_all_baselines(self):
        failures = fool_all_baselines(16)
        assert len(failures) == 3
        assert all(f.accepted for f in failures)

    def test_fingerprint_is_not_fooled(self):
        """The randomized machine rejects the very inputs that kill the
        deterministic sketches — the RST vs. one-pass separation."""
        rng = random.Random(1)
        for n in (8, 16):
            inst = xor_sum_collision_instance(n)
            rejections = sum(
                not multiset_equality_fingerprint(inst, rng).accepted
                for _ in range(30)
            )
            assert rejections >= 15  # well above the guaranteed 1/2

    def test_one_pass_baselines_complete(self):
        """Baselines never reject equal multisets (their redeeming feature)."""
        from repro.problems import random_equal_instance

        rng = random.Random(2)
        for _ in range(10):
            inst = random_equal_instance(5, 8, rng)
            for sketch in ("xor", "sum", "xor+sum"):
                assert one_pass_multiset_test(inst, sketch=sketch).accepted

    def test_unknown_sketch(self):
        with pytest.raises(ValueError):
            one_pass_multiset_test("0#0#", sketch="sha256")


class TestSkeletonCounting:
    def test_census_parity_machine(self):
        words = frozenset({"00", "01", "10", "11"})
        nlm = single_scan_parity_nlm(words, 2)
        census = enumerate_skeletons(nlm, sorted(words), r=1)
        assert census.inputs_enumerated == 16
        # skeletons see the parity *after v1* (it is in the state of the
        # second moving step); the final accept/reject step moves no head,
        # so it is a wildcard (Definition 28) and does not split further → 2
        assert census.distinct_skeletons == 2
        assert census.within_bound

    def test_census_rejects_nondeterministic(self):
        with pytest.raises(MachineError):
            enumerate_skeletons(coin_nlm(frozenset({"0"}), 1), ["0"], r=1)

    def test_census_rejects_explosion(self):
        words = frozenset({"0", "1"})
        nlm = single_scan_parity_nlm(words, 2)
        with pytest.raises(MachineError):
            enumerate_skeletons(nlm, sorted(words), r=1, max_inputs=1)

    def test_skeleton_count_independent_of_value_length(self):
        """Lemma 32's essence: n does not enter the skeleton count."""

        def make_alphabet(n):
            # two values per parity class, length n
            return frozenset(
                {"0" * n, "0" * (n - 1) + "1", "1" + "0" * (n - 1), "1" * n}
            )

        def make_machine(alphabet):
            return single_scan_parity_nlm(alphabet, 2)

        counts = skeletons_independent_of_value_length(
            make_machine, make_alphabet, [2, 4, 8], r=1
        )
        assert len(set(counts.values())) == 1
