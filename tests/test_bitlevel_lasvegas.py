"""Tests for the bit-level fingerprint machine and the Las Vegas layer."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    LasVegasSorter,
    check_sort_via_sorter,
    las_vegas_success_amplification,
    multiset_equality_fingerprint,
    multiset_equality_fingerprint_bitlevel,
)
from repro.errors import EncodingError, ReproError
from repro.problems import (
    CHECK_SORT,
    MULTISET_EQUALITY,
    encode_instance,
    near_miss_instance,
    random_checksort_instance,
    random_equal_instance,
)

bit_words = st.lists(st.text(alphabet="01", max_size=8), max_size=6)


class TestBitLevelFingerprint:
    def test_equal_always_accepted(self):
        rng = random.Random(0)
        for _ in range(20):
            inst = random_equal_instance(rng.randint(1, 8), rng.randint(0, 10), rng)
            result = multiset_equality_fingerprint_bitlevel(inst.encode(), rng)
            assert result.accepted

    def test_empty_instance(self):
        result = multiset_equality_fingerprint_bitlevel("", random.Random(0))
        assert result.accepted

    def test_empty_values(self):
        # "##" = one empty value per half: equal
        result = multiset_equality_fingerprint_bitlevel("##", random.Random(0))
        assert result.accepted

    def test_leading_separator(self):
        # v1 = "", v'1 = "0": unequal — rejected in most runs
        rng = random.Random(1)
        accepts = sum(
            multiset_equality_fingerprint_bitlevel("#0#", rng).accepted
            for _ in range(50)
        )
        assert accepts <= 25

    def test_two_scans_one_tape(self):
        rng = random.Random(2)
        inst = random_equal_instance(16, 12, rng)
        result = multiset_equality_fingerprint_bitlevel(inst.encode(), rng)
        assert result.report.scans <= 2
        assert result.report.tapes_used == 1

    def test_rejects_bad_alphabet(self):
        with pytest.raises(EncodingError):
            multiset_equality_fingerprint_bitlevel("ab#", random.Random(0))
        with pytest.raises(EncodingError):
            multiset_equality_fingerprint_bitlevel("01", random.Random(0))
        with pytest.raises(EncodingError):
            multiset_equality_fingerprint_bitlevel("0#", random.Random(0))

    def test_unequal_mostly_rejected(self):
        rng = random.Random(3)
        accepts = sum(
            multiset_equality_fingerprint_bitlevel(
                near_miss_instance(6, 8, rng).encode(), rng
            ).accepted
            for _ in range(100)
        )
        assert accepts <= 50

    @given(bit_words, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_record_level_on_equal(self, words, seed):
        rng = random.Random(seed)
        shuffled = list(words)
        rng.shuffle(shuffled)
        text = encode_instance(words, shuffled)
        bit = multiset_equality_fingerprint_bitlevel(text, random.Random(seed))
        rec = multiset_equality_fingerprint(text, random.Random(seed))
        # on equal multisets both always accept
        assert bit.accepted and rec.accepted

    @given(bit_words, bit_words, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_identical_transcript_same_seed(self, first, second, seed):
        """With the same seed the two implementations make the same random
        choices and compute the same sums — a strong equivalence check."""
        k = min(len(first), len(second))
        text = encode_instance(first[:k], second[:k])
        bit = multiset_equality_fingerprint_bitlevel(text, random.Random(seed))
        rec = multiset_equality_fingerprint(text, random.Random(seed))
        assert bit.accepted == rec.accepted
        assert bit.p1 == rec.p1 and bit.x == rec.x
        assert bit.sum_first == rec.sum_first
        assert bit.sum_second == rec.sum_second

    def test_rejection_is_always_correct(self):
        rng = random.Random(4)
        for _ in range(50):
            inst = random_equal_instance(4, 6, rng)
            assert multiset_equality_fingerprint_bitlevel(
                inst.encode(), rng
            ).accepted


class TestLasVegas:
    def test_reliable_sorter(self):
        sorter = LasVegasSorter()
        result = sorter.sort(["10", "01", "11"])
        assert result.output == ["01", "10", "11"]

    def test_failure_rate_bounded(self):
        with pytest.raises(ReproError):
            LasVegasSorter(failure_probability=0.6)

    def test_failing_sorter_says_dont_know(self):
        sorter = LasVegasSorter(failure_probability=0.5)
        rng = random.Random(0)
        outcomes = [sorter.sort(["1", "0"], rng).answered for _ in range(200)]
        failures = outcomes.count(False)
        assert 50 <= failures <= 150  # ≈ half
        # answered runs are always correct
        for _ in range(50):
            res = sorter.sort(["1", "0"], rng)
            if res.answered:
                assert res.output == ["0", "1"]

    def test_corollary10_reduction_exact(self):
        rng = random.Random(1)
        sorter = LasVegasSorter()
        for _ in range(10):
            yes = random_checksort_instance(8, 6, rng, yes=True)
            no = random_checksort_instance(8, 6, rng, yes=False)
            assert check_sort_via_sorter(yes, sorter).accepted == CHECK_SORT(yes)
            assert check_sort_via_sorter(no, sorter).accepted == CHECK_SORT(no)

    def test_corollary10_reduction_one_sided(self):
        """With a flaky sorter the reduction is a (1/2, 0)-RTM: no false
        positives ever, false negatives only when the sorter fails."""
        rng = random.Random(2)
        sorter = LasVegasSorter(failure_probability=0.5)
        yes = random_checksort_instance(8, 6, rng, yes=True)
        no = random_checksort_instance(8, 6, rng, yes=False)
        yes_accepts = sum(
            check_sort_via_sorter(yes, sorter, rng).accepted for _ in range(100)
        )
        no_accepts = sum(
            check_sort_via_sorter(no, sorter, rng).accepted for _ in range(100)
        )
        assert no_accepts == 0  # no false positives, ever
        assert yes_accepts >= 30  # answers (and then accepts) about half

    def test_amplification(self):
        rng = random.Random(3)
        sorter = LasVegasSorter(failure_probability=0.5)
        result = las_vegas_success_amplification(sorter, ["1", "0"], rng)
        assert result.answered and result.output == ["0", "1"]
