"""The sweep ledger and the report layer over it.

Covers the PR-8 observability surface: canonical-JSON ledger records
with wall-clock isolation, heartbeat/stall emission, the determinism
strip, run_batch / audit / ResultStore threading, the summarize /
compare / history rollups and their ``python -m repro report`` CLI.
"""

import io
import json

import pytest

from repro.cache import ResultStore, compose_key
from repro.errors import MachineError
from repro.observability.ledger import (
    KIND_CACHE_EVENT,
    KIND_HEARTBEAT,
    KIND_STALL,
    KIND_SWEEP_END,
    KIND_SWEEP_START,
    KIND_TASK_OUTCOME,
    KIND_WORKER_RESTART,
    LEDGER_SCHEMA,
    LedgerWriter,
    iter_ledger,
    load_ledger,
    strip_nondeterministic,
    strip_record,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.report import (
    append_history,
    compare_bench,
    history_record,
    render_comparison,
    render_summary,
    summarize_ledgers,
)


def _records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


# -- module-level task bodies (workers import these by qualified name) ----


def _square(x):
    return x * x


# -- the writer ------------------------------------------------------------


class TestLedgerWriter:
    def test_record_shapes_and_canonical_lines(self):
        from repro.cache.fingerprint import canonical_json

        stream = io.StringIO()
        with LedgerWriter(stream) as ledger:
            ledger.sweep_start("demo", tasks=2, jobs=1)
            ledger.record_outcome(
                "demo", index=0, ok=True, seconds=0.25,
                detail={"cell": "a"},
            )
            ledger.record_outcome(
                "demo", index=1, ok=False, attempts=3,
                error={"kind": "task", "exception_type": "ValueError",
                       "message": "boom"},
            )
            ledger.cache_event("hit", "audit-cell", "ab" * 32)
            ledger.sweep_end("demo", cache={"hits": 1, "misses": 0,
                                            "writes": 0, "invalid": 0})
        records = _records(stream)
        assert [r["kind"] for r in records] == [
            KIND_SWEEP_START, KIND_TASK_OUTCOME, KIND_TASK_OUTCOME,
            KIND_CACHE_EVENT, KIND_SWEEP_END,
        ]
        assert all(r["schema"] == LEDGER_SCHEMA for r in records)
        # every line is its own canonical re-serialization
        for line, record in zip(stream.getvalue().splitlines(), records):
            assert line == canonical_json(record)
        start, ok_outcome, bad_outcome, cache, end = records
        assert start["provenance"]["repro_version"]
        assert start["tasks"] == 2
        # wall-clock isolation: the only timing field lives under "wall"
        assert ok_outcome["wall"] == {"seconds": 0.25}
        assert "seconds" not in ok_outcome
        assert ok_outcome["detail"] == {"cell": "a"}
        assert bad_outcome["attempts"] == 3
        assert bad_outcome["error"]["exception_type"] == "ValueError"
        assert cache["event"] == "hit" and cache["entry_kind"] == "audit-cell"
        assert end["completed"] == 1 and end["failed"] == 1
        assert end["cache"]["hits"] == 1
        assert "elapsed_seconds" in end["wall"]
        assert ledger.records_written == 5

    def test_strip_drops_wall_sections_and_stall_records(self):
        stream = io.StringIO()
        ledger = LedgerWriter(stream, min_stall_samples=2, stall_factor=2.0)
        ledger.sweep_start("s", tasks=4)
        for index in range(3):
            ledger.record_outcome("s", index=index, ok=True, seconds=0.01)
        # a sample far beyond 2 x the running p95 must emit a stall
        ledger.record_outcome("s", index=3, ok=True, seconds=30.0)
        ledger.sweep_end("s")
        kinds = [r["kind"] for r in _records(stream)]
        assert KIND_STALL in kinds
        stall = next(r for r in _records(stream) if r["kind"] == KIND_STALL)
        assert stall["wall"]["threshold_seconds"] > 0
        assert strip_record(stall) is None  # wholly wall-dependent
        stripped = strip_nondeterministic(stream.getvalue().splitlines())
        projected = [json.loads(line) for line in stripped]
        assert all(p["kind"] != KIND_STALL for p in projected)
        assert all("wall" not in p for p in projected)
        # the deterministic payload survives intact
        assert sum(p["kind"] == KIND_TASK_OUTCOME for p in projected) == 4

    def test_stall_threshold_uses_distribution_before_the_sample(self):
        # the first slow sample cannot raise its own bar: with 8 fast
        # samples on file, sample 9 is judged against *their* quantile
        stream = io.StringIO()
        ledger = LedgerWriter(stream, min_stall_samples=8)
        for index in range(8):
            ledger.record_outcome("s", index=index, ok=True, seconds=0.002)
        ledger.record_outcome("s", index=8, ok=True, seconds=5.0)
        assert any(r["kind"] == KIND_STALL for r in _records(stream))

    def test_heartbeat_cadence(self):
        stream = io.StringIO()
        ledger = LedgerWriter(stream, heartbeat_every=16)
        ledger.sweep_start("hb", tasks=40)
        for index in range(40):
            ledger.record_outcome("hb", index=index, ok=True)
        ledger.sweep_end("hb")
        beats = [r for r in _records(stream) if r["kind"] == KIND_HEARTBEAT]
        # at 16 and 32 completed; never at 40 (the sweep is over)
        assert [b["completed"] for b in beats] == [16, 32]
        assert all(b["tasks"] == 40 for b in beats)
        assert all("elapsed_seconds" in b["wall"] for b in beats)

    def test_worker_restarts_accumulate(self):
        stream = io.StringIO()
        ledger = LedgerWriter(stream)
        ledger.sweep_start("r", tasks=1)
        ledger.worker_restart("r")
        ledger.worker_restart("r")
        ledger.record_outcome("r", index=0, ok=True)
        ledger.sweep_end("r")
        records = _records(stream)
        restarts = [r for r in records if r["kind"] == KIND_WORKER_RESTART]
        assert [r["restarts"] for r in restarts] == [1, 2]
        end = next(r for r in records if r["kind"] == KIND_SWEEP_END)
        assert end["worker_restarts"] == 2

    def test_registry_counts_records_by_kind(self):
        registry = MetricsRegistry()
        ledger = LedgerWriter(io.StringIO(), registry=registry)
        ledger.sweep_start("m", tasks=1)
        ledger.record_outcome("m", index=0, ok=True)
        ledger.sweep_end("m")
        snapshot = registry.snapshot()
        cells = snapshot["ledger_records_total"]["samples"]
        by_kind = {cell["labels"]["kind"]: cell["value"] for cell in cells}
        assert by_kind == {
            KIND_SWEEP_START: 1, KIND_TASK_OUTCOME: 1, KIND_SWEEP_END: 1,
        }

    def test_writes_to_a_path_and_owns_the_handle(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with LedgerWriter(path) as ledger:
            ledger.sweep_start("p", tasks=0)
            ledger.sweep_end("p")
        records, skipped = load_ledger(path)
        assert [r["kind"] for r in records] == [
            KIND_SWEEP_START, KIND_SWEEP_END,
        ]
        assert skipped == 0

    def test_parameter_validation(self):
        for kwargs in (
            {"heartbeat_every": 0},
            {"stall_factor": 0.0},
            {"stall_quantile": 0.0},
            {"stall_quantile": 1.5},
            {"min_stall_samples": 0},
        ):
            with pytest.raises(ValueError):
                LedgerWriter(io.StringIO(), **kwargs)


class TestHistogramQuantile:
    def test_nearest_rank_over_buckets(self):
        from repro.observability.metrics import Histogram

        h = Histogram("t", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 0.5, 1.5, 4.0):
            h.observe(value)
        assert h.quantile(0.5) == 1.0  # rank 2 of 4 lands in the <=1 bucket
        assert h.quantile(1.0) == 5.0

    def test_empty_and_invalid_and_overflow(self):
        from repro.observability.metrics import Histogram

        h = Histogram("t", buckets=(1.0,))
        assert h.quantile(0.5) is None
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        h.observe(100.0)  # lands in +Inf; report the largest finite bound
        assert h.quantile(1.0) == 1.0


# -- readers ---------------------------------------------------------------


class TestLedgerReaders:
    def test_foreign_lines_are_skipped_and_counted(self):
        stream = io.StringIO()
        ledger = LedgerWriter(stream)
        ledger.sweep_start("x", tasks=0)
        ledger.sweep_end("x")
        lines = stream.getvalue().splitlines()
        mixed = [
            '{"kind": "span", "name": "other-schema"}',
            lines[0],
            "not json at all",
            "",
            lines[1],
            '{"schema": 999, "kind": "sweep-start"}',
        ]
        records, skipped = load_ledger(mixed)
        assert [r["kind"] for r in records] == [
            KIND_SWEEP_START, KIND_SWEEP_END,
        ]
        assert skipped == 3  # span line, garbage, wrong schema — not blank
        assert [r["kind"] for r in iter_ledger(mixed)] == [
            KIND_SWEEP_START, KIND_SWEEP_END,
        ]
        # strip passes foreign lines through untouched: not ours to strip
        stripped = strip_nondeterministic(mixed)
        assert '{"kind": "span", "name": "other-schema"}' in stripped
        assert "not json at all" in stripped


# -- run_batch threading ---------------------------------------------------


class TestRunBatchLedger:
    def _ledger_of(self, jobs):
        from repro.parallel import BatchTask, run_batch

        stream = io.StringIO()
        ledger = LedgerWriter(stream)
        tasks = [BatchTask.call(_square, i) for i in range(6)]
        result = run_batch(tasks, jobs=jobs, label="sq", ledger=ledger)
        assert list(result.values()) == [i * i for i in range(6)]
        return stream.getvalue().splitlines()

    def test_serial_sweep_is_journaled(self):
        records = [json.loads(line) for line in self._ledger_of(1)]
        kinds = [r["kind"] for r in records]
        assert kinds[0] == KIND_SWEEP_START and kinds[-1] == KIND_SWEEP_END
        outcomes = [r for r in records if r["kind"] == KIND_TASK_OUTCOME]
        assert sorted(r["index"] for r in outcomes) == list(range(6))
        assert all(r["ok"] for r in outcomes)
        end = records[-1]
        assert end["completed"] == 6 and end["failed"] == 0

    def test_parallel_strips_to_the_same_outcome_set(self):
        def outcome_lines(lines):
            return sorted(
                line for line in strip_nondeterministic(lines)
                if json.loads(line)["kind"] == KIND_TASK_OUTCOME
            )

        # completion order may differ across processes; content may not
        # (sweep-start/-end legitimately differ: they record the jobs)
        assert outcome_lines(self._ledger_of(1)) == outcome_lines(
            self._ledger_of(2)
        )

    def test_failed_task_outcome_carries_the_error(self):
        from repro.parallel import BatchTask, run_batch

        stream = io.StringIO()
        ledger = LedgerWriter(stream)
        run_batch(
            [BatchTask.call(_raise_value_error)],
            jobs=1, label="bad", ledger=ledger,
        )
        outcome = next(
            r for r in _records(stream) if r["kind"] == KIND_TASK_OUTCOME
        )
        assert not outcome["ok"]
        assert outcome["error"]["exception_type"] == "ValueError"


def _raise_value_error():
    raise ValueError("scripted failure")


# -- audit reconciliation --------------------------------------------------


class TestAuditLedger:
    def _audit(self, tmp_path, name, cache_dir=None):
        from repro.observability.audit import run_contract_audit

        path = tmp_path / name
        cache = None
        with LedgerWriter(path) as ledger:
            if cache_dir is not None:
                cache = ResultStore(cache_dir, ledger=ledger)
            run = run_contract_audit(quick=True, cache=cache, ledger=ledger)
        return run, path

    def test_cells_reconcile_with_the_audit_run(self, tmp_path):
        run, path = self._audit(tmp_path, "cold.jsonl", tmp_path / "cache")
        records, _ = load_ledger(path)
        cells = [
            r for r in records
            if r["kind"] == KIND_TASK_OUTCOME and r["label"] == "audit-cells"
        ]
        # one outcome per check, in spec x cell order; the (m, n) cell
        # coordinates recompute each check's N = m(2n + 2) exactly
        expected = [
            (c.name, check.input_size, check.ok)
            for c in run.contracts for check in c.checks
        ]
        journaled = [
            (r["detail"]["contract"],
             r["detail"]["m"] * (2 * r["detail"]["n"] + 2),
             r["ok"])
            for r in cells
        ]
        assert journaled == expected
        assert len(cells) == sum(len(c.checks) for c in run.contracts) == 24
        # cold run: every cell computed, every lookup a miss + a write
        assert {r["detail"]["source"] for r in cells} == {"computed"}
        events = [r for r in records if r["kind"] == KIND_CACHE_EVENT]
        assert sum(e["event"] == "miss" for e in events) == 24
        assert sum(e["event"] == "write" for e in events) == 24
        end = next(
            r for r in records
            if r["kind"] == KIND_SWEEP_END and r["label"] == "audit-cells"
        )
        assert end["cache"] == {
            "hits": 0, "misses": 24, "writes": 24, "invalid": 0,
        }

    def test_warm_run_serves_every_cell_from_the_store(self, tmp_path):
        cache_dir = tmp_path / "cache"
        self._audit(tmp_path, "cold.jsonl", cache_dir)
        _run, path = self._audit(tmp_path, "warm.jsonl", cache_dir)
        records, _ = load_ledger(path)
        cells = [
            r for r in records
            if r["kind"] == KIND_TASK_OUTCOME and r["label"] == "audit-cells"
        ]
        assert {r["detail"]["source"] for r in cells} == {"cache"}
        end = next(
            r for r in records
            if r["kind"] == KIND_SWEEP_END and r["label"] == "audit-cells"
        )
        assert end["cache"] == {
            "hits": 24, "misses": 0, "writes": 0, "invalid": 0,
        }

    def test_identical_runs_strip_to_identical_bytes(self, tmp_path):
        _run_a, path_a = self._audit(tmp_path, "a.jsonl", tmp_path / "ca")
        _run_b, path_b = self._audit(tmp_path, "b.jsonl", tmp_path / "cb")
        assert path_a.read_text() != ""
        assert strip_nondeterministic(path_a) == strip_nondeterministic(path_b)


# -- ResultStore events ----------------------------------------------------


class TestStoreLedgerEvents:
    def test_hit_miss_write_invalid_sequence(self, tmp_path):
        stream = io.StringIO()
        ledger = LedgerWriter(stream)
        store = ResultStore(tmp_path / "store")
        store.attach_ledger(ledger)
        key = compose_key("test-kind", x=1)
        assert store.lookup(key) is None
        store.store(key, {"v": 7})
        assert store.lookup(key) == {"v": 7}
        store.path_for(key).write_text("{corrupt", encoding="utf-8")
        assert store.lookup(key) is None  # quarantined: invalid + miss
        events = [
            (r["event"], r["entry_kind"]) for r in _records(stream)
        ]
        assert events == [
            ("miss", "test-kind"),
            ("write", "test-kind"),
            ("hit", "test-kind"),
            ("invalid", "test-kind"),
            ("miss", "test-kind"),
        ]
        digests = {r["key"] for r in _records(stream)}
        assert digests == {key.digest}


# -- census caching (satellite: route the census through the store) --------


class TestCensusCache:
    def _machine(self):
        import functools

        from repro.listmachine.examples import tandem_compare_nlm

        alphabet = frozenset({"00", "01", "10", "11"})
        factory = functools.partial(tandem_compare_nlm, alphabet, 2)
        return factory(), sorted(alphabet)

    def test_cache_requires_an_identity_token(self, tmp_path):
        from repro.lowerbounds.counting import enumerate_skeletons

        nlm, alphabet = self._machine()
        store = ResultStore(tmp_path)
        with pytest.raises(MachineError, match="cache_key"):
            enumerate_skeletons(nlm, alphabet, r=2, cache=store)

    def test_hit_skips_enumeration_and_journals(self, tmp_path):
        from repro.lowerbounds.counting import enumerate_skeletons

        nlm, alphabet = self._machine()
        stream = io.StringIO()
        ledger = LedgerWriter(stream)
        store = ResultStore(tmp_path, ledger=ledger)
        cold = enumerate_skeletons(
            nlm, alphabet, r=2, cache=store, cache_key="tandem-2"
        )
        warm = enumerate_skeletons(
            nlm, alphabet, r=2, cache=store, cache_key="tandem-2"
        )
        assert warm == cold
        assert store.hits == 1 and store.misses == 1 and store.writes == 1
        events = [r["event"] for r in _records(stream)]
        assert events == ["miss", "write", "hit"]
        assert all(
            r["entry_kind"] == "skeleton-census" for r in _records(stream)
        )
        # a different identity token is a different entry
        other = enumerate_skeletons(
            nlm, alphabet, r=2, cache=store, cache_key="other-family"
        )
        assert other == cold
        assert store.misses == 2 and store.writes == 2


# -- summaries -------------------------------------------------------------


class TestSummarize:
    def _ledger_lines(self):
        stream = io.StringIO()
        ledger = LedgerWriter(stream, heartbeat_every=2)
        ledger.sweep_start("s", tasks=4, jobs=2)
        ledger.record_outcome(
            "s", index=0, ok=True, seconds=0.1, detail={"source": "cache"}
        )
        ledger.record_outcome(
            "s", index=1, ok=True, attempts=2, seconds=0.3,
            detail={"source": "computed"},
        )
        ledger.record_outcome(
            "s", index=2, ok=False, seconds=0.2,
            error={"kind": "task", "exception_type": "ValueError",
                   "message": "x"},
        )
        ledger.worker_restart("s")
        ledger.record_outcome("s", index=3, ok=True, seconds=0.4)
        ledger.cache_event("hit", "audit-cell", "aa")
        ledger.cache_event("miss", "audit-cell", "bb")
        ledger.sweep_end(
            "s", cache={"hits": 1, "misses": 1, "writes": 1, "invalid": 0}
        )
        return stream.getvalue().splitlines()

    def test_rollup_counts(self):
        summary = summarize_ledgers([self._ledger_lines()])
        sweep = summary["sweeps"]["s"]
        assert sweep["tasks"] == 4
        assert sweep["completed"] == 3 and sweep["failed"] == 1
        assert sweep["retries"] == 1
        assert sweep["worker_restarts"] == 1
        assert sweep["errors"] == {"task": 1}
        assert sweep["sources"] == {"cache": 1, "computed": 1}
        assert sweep["cache"]["hits"] == 1
        latency = sweep["wall"]["latency_seconds"]
        assert latency["count"] == 4 and latency["max"] == 0.4
        assert latency["p50"] == 0.2
        assert summary["cache_events"]["audit-cell"]["hit"] == 1
        assert summary["cache_events"]["audit-cell"]["miss"] == 1

    def test_summary_is_deterministic_and_renders(self):
        lines = self._ledger_lines()
        first = summarize_ledgers([lines])
        second = summarize_ledgers([lines])
        assert first == second
        rendered = render_summary(first)
        assert any("sweep s:" in line for line in rendered)
        assert any("served from: cache=1" in line for line in rendered)


# -- bench comparison ------------------------------------------------------


def _payload(top, cells):
    """cells: {(engine, workload, n): speedup} -> a bench-shaped payload."""
    metric = {
        "streaming": "speedup_vs_reference",
        "compiled": "speedup_vs_streaming",
        "batch": "speedup_vs_compiled",
    }
    rows = [
        {"engine": engine, "machine": workload, "n": n,
         metric[engine]: value}
        for (engine, workload, n), value in cells.items()
    ]
    return {"summary": {"top_n_speedup": top}, "rows": rows}


class TestCompareBench:
    def test_ok_and_regressed_rows(self):
        baseline = _payload(10.0, {
            ("streaming", "equality", 64): 8.0,
            ("streaming", "equality", 1024): 10.0,
            ("compiled", "copy", 1024): 4.0,
        })
        run = _payload(9.5, {
            ("streaming", "equality", 64): 2.0,  # small n: not compared
            ("streaming", "equality", 1024): 9.5,
            ("compiled", "copy", 1024): 2.0,  # regressed
        })
        verdict = compare_bench(run, baseline, tolerance=0.8)
        assert not verdict["baseline_invalid"]
        assert verdict["top"]["verdict"] == "ok"
        by_cell = {
            (r["engine"], r["workload"]): r for r in verdict["rows"]
        }
        streaming = by_cell[("streaming", "equality")]
        assert streaming["n"] == 1024 and streaming["verdict"] == "ok"
        compiled = by_cell[("compiled", "copy")]
        assert compiled["verdict"] == "regressed"
        assert compiled["floor"] == 3.2
        assert verdict["regressed"]
        assert any("compiled/copy" in line for line in verdict["regressions"])
        rendered = render_comparison(verdict)
        assert rendered[-1] == "  verdict: REGRESSION"

    def test_new_missing_and_incomparable_cells(self):
        baseline = _payload(5.0, {
            ("streaming", "parity", 64): 5.0,
            ("compiled", "copy", 64): 3.0,
        })
        run = _payload(5.0, {
            ("streaming", "parity", 256): 5.0,  # no shared n
            ("batch", "copy", 64): 2.0,  # new tier
        })
        verdict = compare_bench(run, baseline)
        by_cell = {
            (r["engine"], r["workload"]): r["verdict"]
            for r in verdict["rows"]
        }
        assert by_cell[("streaming", "parity")] == "incomparable"
        assert by_cell[("batch", "copy")] == "new"
        assert by_cell[("compiled", "copy")] == "missing"
        assert not verdict["regressed"]

    def test_invalid_baseline_never_passes(self):
        run = _payload(9.0, {})
        for top in (0, -1.0, None, "5", True):
            verdict = compare_bench(run, {"summary": {"top_n_speedup": top}})
            assert verdict["baseline_invalid"]
            assert verdict["top"]["verdict"] == "baseline-invalid"
            assert not verdict["regressed"]
            assert render_comparison(verdict)[-1] == (
                "  verdict: baseline-invalid"
            )

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            compare_bench(_payload(1.0, {}), _payload(1.0, {}), tolerance=0.0)
        with pytest.raises(ValueError):
            compare_bench(_payload(1.0, {}), _payload(1.0, {}), tolerance=1.5)


# -- history ---------------------------------------------------------------


class TestHistory:
    def test_record_is_timestamp_free_and_append_idempotent(self, tmp_path):
        payload = _payload(7.5, {("streaming", "equality", 64): 7.5})
        payload["benchmark"] = "engine"
        payload["python"] = "3.12.0"
        record = history_record(payload, source="BENCH_engine.json")
        assert record["benchmark"] == "engine"
        assert record["summary"]["top_n_speedup"] == 7.5
        assert "time" not in json.dumps(record).lower()
        path = tmp_path / "history.jsonl"
        assert append_history(path, record) is True
        assert append_history(path, record) is False  # idempotent
        other = history_record(payload, source="other.json")
        assert append_history(path, other) is True
        assert len(path.read_text().splitlines()) == 2

    def test_parallel_payload_summarizes_sweeps(self):
        payload = {
            "benchmark": "parallel", "python": "3.12.0",
            "cpu_count": 8, "jobs": 2,
            "sweeps": {"audit": {"speedup": 1.7}},
        }
        record = history_record(payload, source="BENCH_parallel.json")
        assert record["summary"]["cpu_count"] == 8
        assert record["summary"]["sweeps"]["audit"]["speedup"] == 1.7


# -- the report CLI --------------------------------------------------------


class TestReportCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload) + "\n")
        return str(path)

    def test_summarize_text_and_json(self, tmp_path, capsys):
        from repro.__main__ import main

        ledger_path = tmp_path / "sweep.jsonl"
        with LedgerWriter(ledger_path) as ledger:
            ledger.sweep_start("cli", tasks=1)
            ledger.record_outcome("cli", index=0, ok=True)
            ledger.sweep_end("cli")
        assert main(["report", "summarize", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep cli: 1 tasks" in out
        assert main(["report", "summarize", str(ledger_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["sweeps"]["cli"]["completed"] == 1

    def test_compare_exit_codes(self, tmp_path, capsys):
        from repro.__main__ import main

        baseline = self._write(
            tmp_path, "baseline.json",
            _payload(10.0, {("streaming", "equality", 64): 10.0}),
        )
        good = self._write(
            tmp_path, "good.json",
            _payload(9.5, {("streaming", "equality", 64): 9.5}),
        )
        degraded = self._write(
            tmp_path, "bad.json",
            _payload(3.0, {("streaming", "equality", 64): 3.0}),
        )
        invalid = self._write(tmp_path, "invalid.json", {"summary": {}})

        assert main(["report", "compare", good, "--baseline", baseline]) == 0
        capsys.readouterr()
        out_path = tmp_path / "comparison.json"
        assert main([
            "report", "compare", degraded, "--baseline", baseline,
            "--output", str(out_path),
        ]) == 1
        out = capsys.readouterr().out
        # the verdict names the regressed engine/workload
        assert "streaming/equality" in out and "REG" in out
        detail = json.loads(out_path.read_text())
        assert detail["regressed"] and detail["rows"][0]["verdict"] == (
            "regressed"
        )
        assert main(
            ["report", "compare", good, "--baseline", invalid]
        ) == 2
        capsys.readouterr()

    def test_history_appends_idempotently(self, tmp_path, capsys):
        from repro.__main__ import main

        payload = self._write(
            tmp_path, "bench.json",
            dict(_payload(5.0, {}), benchmark="engine", python="3.12.0"),
        )
        history = tmp_path / "history.jsonl"
        assert main(
            ["report", "history", payload, "--file", str(history)]
        ) == 0
        assert main(
            ["report", "history", payload, "--file", str(history)]
        ) == 0
        capsys.readouterr()
        assert len(history.read_text().splitlines()) == 1

    def test_strip_writes_deterministic_lines(self, tmp_path, capsys):
        from repro.__main__ import main

        ledger_path = tmp_path / "sweep.jsonl"
        with LedgerWriter(ledger_path) as ledger:
            ledger.sweep_start("st", tasks=1)
            ledger.record_outcome("st", index=0, ok=True, seconds=1.5)
            ledger.sweep_end("st")
        out_path = tmp_path / "stripped.txt"
        assert main([
            "report", "strip", str(ledger_path), "--output", str(out_path)
        ]) == 0
        capsys.readouterr()
        lines = out_path.read_text().splitlines()
        assert len(lines) == 3
        assert all("wall" not in json.loads(line) for line in lines)

    def test_audit_ledger_flag_end_to_end(self, tmp_path, capsys):
        from repro.__main__ import main

        ledger_path = tmp_path / "audit.jsonl"
        code = main([
            "audit", "--quick",
            "--output", str(tmp_path / "audit.json"),
            "--ledger", str(ledger_path),
            "--cache", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep ledger ->" in out
        records, skipped = load_ledger(ledger_path)
        assert skipped == 0
        cells = [
            r for r in records
            if r["kind"] == KIND_TASK_OUTCOME and r["label"] == "audit-cells"
        ]
        assert len(cells) == 24 and all(r["ok"] for r in cells)
