"""Tests for the extended machine library and the table-driven NLM."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineError
from repro.listmachine import LA, RA, Inp, NLM, run_deterministic as nlm_run
from repro.machines import (
    copy_reverse_machine,
    majority_machine,
    run_deterministic,
)

bits = st.text(alphabet="01", max_size=14)


class TestCopyReverseMachine:
    @given(bits)
    @settings(max_examples=60, deadline=None)
    def test_reverses(self, word):
        machine = copy_reverse_machine()
        run = run_deterministic(machine, word)
        assert run.accepts(machine)
        assert run.final.tapes[1] == word[::-1]

    @given(bits)
    @settings(max_examples=30, deadline=None)
    def test_single_reversal(self, word):
        machine = copy_reverse_machine()
        run = run_deterministic(machine, word)
        revs = run.statistics.reversals_per_tape
        assert revs[0] <= 1 and revs[1] == 0
        assert run.statistics.external_scans(2) <= 2

    @given(bits.filter(lambda w: len(w) >= 1))
    @settings(max_examples=30, deadline=None)
    def test_input_restored(self, word):
        machine = copy_reverse_machine()
        run = run_deterministic(machine, word)
        assert run.final.tapes[0].rstrip("␣") == word


class TestMajorityMachine:
    @given(bits)
    @settings(max_examples=60, deadline=None)
    def test_decides_majority(self, word):
        machine = majority_machine()
        run = run_deterministic(machine, word)
        expected = word.count("1") > word.count("0")
        assert run.accepts(machine) == expected

    @given(bits)
    @settings(max_examples=40, deadline=None)
    def test_space_is_max_absolute_imbalance(self, word):
        machine = majority_machine()
        run = run_deterministic(machine, word)
        imbalance = 0
        best = 0
        for ch in word:
            imbalance += 1 if ch == "1" else -1
            best = max(best, abs(imbalance))
        # marker + pebble stack + the free slot
        assert run.statistics.internal_space(1) == best + 2

    def test_single_scan(self):
        machine = majority_machine()
        run = run_deterministic(machine, "110100")
        assert run.statistics.external_scans(1) == 1


class TestTableNLM:
    def _machine(self):
        """A one-step table machine: accepts iff the first value is '1'."""
        cell0 = lambda v: (LA, Inp(v), RA)  # noqa: E731
        still = ((+1, False), (+1, False))
        table = {
            ("start", (cell0("1"), (LA, RA)), "c"): ("acc", still),
            ("start", (cell0("0"), (LA, RA)), "c"): ("rej", still),
        }
        return NLM.from_table(
            t=2,
            m=1,
            input_alphabet={"0", "1"},
            choices=("c",),
            initial_state="start",
            table=table,
            final_states={"acc", "rej"},
            accepting_states={"acc"},
        )

    def test_runs(self):
        nlm = self._machine()
        assert nlm_run(nlm, ["1"]).accepts(nlm)
        assert not nlm_run(nlm, ["0"]).accepts(nlm)

    def test_states_inferred(self):
        nlm = self._machine()
        assert nlm.states == {"start", "acc", "rej"}
        assert nlm.k == 3

    def test_missing_entry_is_an_error(self):
        # a machine whose table omits a reachable situation is not total
        cell0 = lambda v: (LA, Inp(v), RA)  # noqa: E731
        still = ((+1, False),)
        table = {
            ("start", (cell0("1"),), "c"): ("acc", still),
        }
        nlm = NLM.from_table(
            t=1,
            m=1,
            input_alphabet={"0", "1"},
            choices=("c",),
            initial_state="start",
            table=table,
            final_states={"acc"},
            accepting_states={"acc"},
        )
        assert nlm_run(nlm, ["1"]).accepts(nlm)
        with pytest.raises(MachineError):
            nlm_run(nlm, ["0"])

    def test_explicit_states_respected(self):
        nlm = NLM.from_table(
            t=1,
            m=0,
            input_alphabet={"0"},
            choices=("c",),
            initial_state="acc",
            table={},
            final_states={"acc"},
            accepting_states={"acc"},
            states={"acc", "spare"},
        )
        assert nlm.k == 2
