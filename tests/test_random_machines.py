"""Fuzzing the list machine semantics and lemma checkers with random machines.

The lemmas quantify over all (r, t)-bounded machines; these tests sample
that space: seeded random terminating NLMs (arbitrary head choreography)
must satisfy every structural bound and semantic invariant, and the whole
family of feature-parity victims must fall to the Lemma 21 attack.
"""

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.listmachine import (
    acceptance_probability,
    check_run_shape,
    lemma21_attack,
    merge_lemma_holds,
    run_deterministic,
    run_with_choices,
    skeleton_of_run,
)
from repro.listmachine.random_machines import (
    feature_vector_parity_nlm,
    random_terminating_nlm,
)
from repro.listmachine.skeleton import reconstruct_run
from repro.problems import CheckPhiFamily

WORDS = frozenset({"00", "01", "10", "11"})

machine_seeds = st.integers(min_value=0, max_value=2**32 - 1)
inputs3 = st.lists(st.sampled_from(sorted(WORDS)), min_size=3, max_size=3)


class TestRandomMachineFuzz:
    @given(machine_seeds, inputs3)
    @settings(max_examples=120, deadline=None)
    def test_shape_bounds_hold_universally(self, seed, values):
        """Lemmas 30/31 must hold for machines nobody designed."""
        nlm = random_terminating_nlm(seed, WORDS, 3, length=6)
        run = run_deterministic(nlm, values)
        report = check_run_shape(run, nlm, run.scan_count(nlm))
        assert report.all_within, (seed, values, report)

    @given(machine_seeds, inputs3)
    @settings(max_examples=80, deadline=None)
    def test_merge_lemma_holds_universally(self, seed, values):
        nlm = random_terminating_nlm(seed, WORDS, 3, length=6)
        run = run_deterministic(nlm, values)
        assert merge_lemma_holds(run, nlm, run.scan_count(nlm))

    @given(machine_seeds, inputs3)
    @settings(max_examples=80, deadline=None)
    def test_skeleton_reconstruction_universally(self, seed, values):
        nlm = random_terminating_nlm(seed, WORDS, 3, length=6)
        run = run_deterministic(nlm, values)
        rebuilt = reconstruct_run(
            nlm, values, skeleton_of_run(run), run.choices_used
        )
        assert rebuilt.configurations == run.configurations

    @given(machine_seeds, inputs3)
    @settings(max_examples=60, deadline=None)
    def test_runs_terminate_within_declared_length(self, seed, values):
        nlm = random_terminating_nlm(seed, WORDS, 3, length=6)
        run = run_deterministic(nlm, values)
        assert run.length <= 7  # length steps + initial configuration

    @given(machine_seeds, inputs3)
    @settings(max_examples=30, deadline=None)
    def test_probability_identity_for_randomized_machines(self, seed, values):
        """Lemma 25 on random |C| = 2 machines: exact probability equals
        the fraction of accepting choice sequences."""
        nlm = random_terminating_nlm(seed, WORDS, 3, length=3, choices=2)
        ell = 3
        accepting = sum(
            run_with_choices(nlm, values, seq).accepts(nlm)
            for seq in itertools.product(nlm.choices, repeat=ell)
        )
        assert Fraction(accepting, len(nlm.choices) ** ell) == (
            acceptance_probability(nlm, values)
        )

    @given(machine_seeds, inputs3)
    @settings(max_examples=40, deadline=None)
    def test_total_list_length_never_decreases(self, seed, values):
        """Footnote 4 of the paper, fuzzed."""
        nlm = random_terminating_nlm(seed, WORDS, 3, length=6, t=3)
        run = run_deterministic(nlm, values)
        lengths = [cfg.total_list_length for cfg in run.configurations]
        assert lengths == sorted(lengths)


def _family_inputs(m, n_bits):
    fam = CheckPhiFamily(m, n_bits)
    inputs = []
    for choices in itertools.product(
        *[fam.intervals.enumerate_interval(j) for j in range(m)]
    ):
        inst = fam.instance_from_choices(list(choices))
        inputs.append(tuple(inst.first) + tuple(inst.second))
    return fam, inputs


class TestUniversalAttack:
    """Theorem 6 at machine level: EVERY feature-parity victim falls."""

    @pytest.mark.parametrize(
        "feature_bits,n_bits",
        [
            ((0,), 3),
            ((1,), 3),
            ((2,), 3),
            ((0, 1), 4),
            ((0, 2), 4),
            ((1, 3), 4),
        ],
    )
    def test_every_invariant_machine_is_fooled(self, feature_bits, n_bits):
        m = 2
        fam, yes_inputs = _family_inputs(m, n_bits)
        alphabet = frozenset(v for inp in yes_inputs for v in inp)
        victim = feature_vector_parity_nlm(alphabet, 2 * m, feature_bits)
        # soundness precondition: accepts every yes-instance
        assert all(
            run_deterministic(victim, list(v)).accepts(victim)
            for v in yes_inputs
        )
        outcome = lemma21_attack(victim, yes_inputs, fam.phi, r=1)
        assert outcome.success, (feature_bits, outcome.detail)
        u = outcome.fooling_input
        assert run_deterministic(victim, list(u)).accepts(victim)
        assert any(u[i] != u[m + fam.phi[i]] for i in range(m))

    def test_wider_features_need_bigger_intervals(self):
        """The pigeonhole boundary: with intervals no larger than the
        feature space, the sampled family may not contain spliceable
        pairs — the attack is then *allowed* to fail (the lower bound
        needs n ≥ 1 + (m²+1)·log(2k), which such tiny n violates)."""
        m = 2
        fam, yes_inputs = _family_inputs(m, 3)  # interval size 4
        alphabet = frozenset(v for inp in yes_inputs for v in inp)
        # w = 2 features on 3-bit values: 4 feature classes, interval 4 —
        # pigeonhole gives no guarantee; both outcomes are legitimate, but
        # the attack must never produce an invalid witness
        victim = feature_vector_parity_nlm(alphabet, 2 * m, (0, 1))
        outcome = lemma21_attack(victim, yes_inputs, fam.phi, r=1)
        if outcome.success:
            u = outcome.fooling_input
            assert run_deterministic(victim, list(u)).accepts(victim)
            assert any(u[i] != u[m + fam.phi[i]] for i in range(m))
