"""Tests for the Turing machine substrate (repro.machines)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineError, StepBudgetExceeded
from repro.extmem.tape import BLANK
from repro.machines import (
    L,
    MachineBuilder,
    N,
    R,
    TuringMachine,
    Transition,
    acceptance_probability,
    choice_alphabet,
    coin_flip_machine,
    copy_machine,
    enumerate_runs,
    equality_machine,
    guess_bit_machine,
    parity_machine,
    run_deterministic,
    run_with_choices,
)
from repro.machines.execute import lemma3_run_length_bound

bits = st.text(alphabet="01", max_size=12)


class TestDefinitions:
    def test_transition_arity_validated(self):
        with pytest.raises(MachineError):
            Transition("q", ("0",), "q", ("0", "1"), (R,))

    def test_transition_move_validated(self):
        with pytest.raises(MachineError):
            Transition("q", ("0",), "q", ("0",), ("X",))

    def test_normalization_enforced(self):
        b = MachineBuilder("bad", external_tapes=2).start("q").accept("a")
        b.on("q", ("0", BLANK), "a", ("0", "0"), (R, R))
        with pytest.raises(MachineError):
            b.build()

    def test_final_states_are_sinks(self):
        b = MachineBuilder("bad").start("q").accept("a")
        b.on("a", ("0",), "q", ("0",), (N,))
        with pytest.raises(MachineError):
            b.build()

    def test_builder_requires_start(self):
        with pytest.raises(MachineError):
            MachineBuilder("x").accept("a").build()

    def test_determinism_detection(self):
        assert copy_machine().is_deterministic
        assert not coin_flip_machine().is_deterministic

    def test_max_branching(self):
        assert copy_machine().max_branching() == 1
        assert coin_flip_machine().max_branching() == 2


class TestDeterministicExecution:
    def test_copy_machine_copies(self):
        run = run_deterministic(copy_machine(), "0110")
        assert run.accepts(copy_machine())
        assert run.final.tapes[1] == "0110"

    def test_copy_machine_single_scan(self):
        run = run_deterministic(copy_machine(), "010101")
        assert run.statistics.external_scans(2) == 1  # no reversal anywhere

    @given(bits)
    @settings(max_examples=50, deadline=None)
    def test_copy_machine_property(self, word):
        machine = copy_machine()
        run = run_deterministic(machine, word)
        assert run.final.tapes[1] == word

    def test_parity_machine(self):
        machine = parity_machine()
        assert run_deterministic(machine, "1100").accepts(machine)
        assert not run_deterministic(machine, "1110").accepts(machine)
        assert run_deterministic(machine, "").accepts(machine)

    def test_parity_uses_one_internal_cell(self):
        machine = parity_machine()
        run = run_deterministic(machine, "110101")
        assert run.statistics.internal_space(1) == 1
        assert run.statistics.is_bounded(machine, r=1, s=1)

    @given(bits)
    @settings(max_examples=50, deadline=None)
    def test_parity_property(self, word):
        machine = parity_machine()
        expected = word.count("1") % 2 == 0
        assert run_deterministic(machine, word).accepts(machine) == expected

    def test_nondeterministic_machine_rejected(self):
        with pytest.raises(MachineError):
            run_deterministic(coin_flip_machine(), "0")

    def test_stuck_machine_reported(self):
        b = MachineBuilder("stuck").start("q").accept("a")
        b.on("q", ("0",), "q", ("0",), (R,))
        machine = b.build()
        with pytest.raises(MachineError):
            run_deterministic(machine, "00")  # blank has no transition

    def test_step_limit(self):
        b = MachineBuilder("long").start("q").accept("a")
        b.on("q", (BLANK,), "q", ("0",), (R,))
        # writes forever; every run infinite — must hit the step budget
        with pytest.raises(StepBudgetExceeded):
            run_deterministic(b.build(), "", step_limit=100)

    def test_head_cannot_fall_off(self):
        b = MachineBuilder("fall").start("q").accept("a")
        b.on("q", ("0",), "q", ("0",), (L,))
        with pytest.raises(MachineError):
            run_deterministic(b.build(), "0")


class TestEqualityMachine:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("01#01", True),
            ("01#10", False),
            ("0#0", True),
            ("#", True),
            ("01#0", False),
            ("0#01", False),
            ("", False),
            ("0101", False),
            ("#01", False),
            ("01#", False),
        ],
    )
    def test_decisions(self, word, expected):
        machine = equality_machine()
        assert run_deterministic(machine, word).accepts(machine) == expected

    @given(bits, bits)
    @settings(max_examples=50, deadline=None)
    def test_property(self, w1, w2):
        machine = equality_machine()
        run = run_deterministic(machine, f"{w1}#{w2}")
        assert run.accepts(machine) == (w1 == w2)

    def test_three_scans_two_tapes(self):
        machine = equality_machine()
        run = run_deterministic(machine, "0110#0110")
        assert run.statistics.external_scans(2) <= 3
        assert machine.external_tapes == 2
        assert run.statistics.internal_space(2) == 0


class TestRandomizedSemantics:
    def test_coin_flip_probability(self):
        machine = coin_flip_machine()
        for word in ("", "0", "0101"):
            assert acceptance_probability(machine, word) == Fraction(1, 2)

    def test_guess_bit_probability(self):
        machine = guess_bit_machine()
        assert acceptance_probability(machine, "0") == Fraction(1, 2)
        assert acceptance_probability(machine, "1") == Fraction(1, 2)
        assert acceptance_probability(machine, "") == Fraction(0)

    def test_deterministic_probability_is_zero_or_one(self):
        machine = parity_machine()
        assert acceptance_probability(machine, "11") == 1
        assert acceptance_probability(machine, "1") == 0

    def test_enumerate_runs_counts(self):
        machine = coin_flip_machine()
        runs = list(enumerate_runs(machine, "0"))
        assert len(runs) == 2
        assert sum(run.accepts(machine) for run in runs) == 1

    def test_probability_matches_run_enumeration(self):
        """Pr = Σ over accepting runs of Π 1/|Next|, cross-checked."""
        machine = guess_bit_machine()
        total = Fraction(0)
        for run in enumerate_runs(machine, "1"):
            prob = Fraction(1)
            for cfg in run.configurations[:-1]:
                from repro.machines.config import successors

                prob /= len(successors(machine, cfg))
            if run.accepts(machine):
                total += prob
        assert total == acceptance_probability(machine, "1")


class TestChoiceSequences:
    """Definition 17 / Lemma 18: the C_T view of randomness."""

    def test_choice_alphabet_is_lcm_range(self):
        assert len(choice_alphabet(copy_machine())) == 1
        assert len(choice_alphabet(coin_flip_machine())) == 2

    def test_run_with_choices_deterministic_machine(self):
        machine = parity_machine()
        run = run_with_choices(machine, "11", [1] * 50)
        assert run.accepts(machine)

    def test_run_with_choices_picks_branches(self):
        machine = coin_flip_machine()
        accept_run = run_with_choices(machine, "0", [2])  # 2 mod 2 = 0 → first
        reject_run = run_with_choices(machine, "0", [1])  # 1 mod 2 = 1 → second
        assert accept_run.accepts(machine)
        assert not reject_run.accepts(machine)

    def test_exhausted_choices_reported(self):
        machine = parity_machine()
        with pytest.raises(MachineError):
            run_with_choices(machine, "111111", [1])

    def test_lemma18_probability_identity(self):
        """Pr(T accepts w) = |{c : ρ_T(w,c) accepts}| / |C_T|^ℓ."""
        from itertools import product

        machine = guess_bit_machine()
        word = "0"
        ell = 3  # any ℓ ≥ the max run length works
        alphabet = choice_alphabet(machine)
        accepting = sum(
            run_with_choices(machine, word, seq).accepts(machine)
            for seq in product(alphabet, repeat=ell)
        )
        assert Fraction(accepting, len(alphabet) ** ell) == acceptance_probability(
            machine, word
        )


class TestLemma3:
    def test_run_length_bound(self):
        machine = equality_machine()
        for word in ("01#01", "0110#0110", "011010#011010"):
            run = run_deterministic(machine, word)
            stats = run.statistics
            r = stats.external_scans(machine.external_tapes)
            s = stats.internal_space(machine.external_tapes)
            bound = lemma3_run_length_bound(
                len(word), r, s, machine.external_tapes
            )
            assert stats.length <= bound

    def test_bound_monotone(self):
        assert lemma3_run_length_bound(100, 2, 3, 2) <= lemma3_run_length_bound(
            100, 3, 3, 2
        )
