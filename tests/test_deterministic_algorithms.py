"""Tests for tape merge sort, CHECK-SORT, SET/MULTISET-EQUALITY solvers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import ceil_log2
from repro.algorithms import (
    check_sort_deterministic,
    multiset_equality_deterministic,
    set_equality_deterministic,
    sort_instance_strings,
    tape_merge_sort,
)
from repro.algorithms.checksort import checksort_reversal_budget
from repro.algorithms.mergesort_tape import RUN_SEP
from repro.errors import ReproError
from repro.extmem import RecordTape, ResourceBudget, ResourceTracker
from repro.problems import (
    CHECK_SORT,
    MULTISET_EQUALITY,
    SET_EQUALITY,
    encode_instance,
    random_checksort_instance,
    random_equal_instance,
    random_unequal_instance,
)

bit_words = st.lists(st.text(alphabet="01", min_size=1, max_size=8), max_size=24)


class TestTapeMergeSort:
    def test_sorts_basic(self):
        out, _ = sort_instance_strings(["10", "01", "11", "00"])
        assert out == ["00", "01", "10", "11"]

    def test_empty_and_singleton(self):
        assert sort_instance_strings([])[0] == []
        assert sort_instance_strings(["1"])[0] == ["1"]

    def test_duplicates_preserved(self):
        out, _ = sort_instance_strings(["1", "0", "1", "0"])
        assert out == ["0", "0", "1", "1"]

    def test_rejects_separator_in_input(self):
        tracker = ResourceTracker()
        tape = RecordTape([RUN_SEP], tracker=tracker)
        with pytest.raises(ReproError):
            tape_merge_sort(tape, tracker)

    @given(bit_words)
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted(self, words):
        out, _ = sort_instance_strings(words)
        assert out == sorted(words)

    @given(st.lists(st.integers(min_value=0, max_value=99), max_size=24))
    def test_arbitrary_records_with_key(self, values):
        tracker = ResourceTracker()
        tape = RecordTape(values, tracker=tracker)
        out = tape_merge_sort(tape, tracker, key=lambda v: -v)
        out.rewind()
        assert list(out.scan()) == sorted(values, reverse=True)

    def test_reversals_logarithmic(self):
        """Reversals grow like log m: the heart of Corollary 7."""
        counts = {}
        rng = random.Random(0)
        for m in (16, 64, 256, 1024):
            words = ["".join(rng.choice("01") for _ in range(12)) for _ in range(m)]
            _, tracker = sort_instance_strings(words)
            counts[m] = tracker.reversals
        # doubling log m (16 → 256) should roughly double the reversals;
        # certainly not quadruple them (which linear growth would)
        assert counts[256] <= 2.5 * counts[16]
        assert counts[1024] <= counts[16] * ceil_log2(1024) / 2
        # and an absolute O(log m) envelope with an explicit constant
        for m, rev in counts.items():
            assert rev <= 14 * (ceil_log2(m) + 2)

    def test_respects_scan_budget(self):
        m = 64
        rng = random.Random(1)
        words = ["".join(rng.choice("01") for _ in range(8)) for _ in range(m)]
        budget = ResourceBudget(max_scans=checksort_reversal_budget(m))
        tracker = ResourceTracker(budget)
        tape = RecordTape(words, tracker=tracker)
        out = tape_merge_sort(tape, tracker)
        out.rewind()
        assert list(out.scan()) == sorted(words)

    def test_presorted_input_still_terminates(self):
        out, _ = sort_instance_strings([format(i, "08b") for i in range(100)])
        assert out == [format(i, "08b") for i in range(100)]


class TestCheckSort:
    def test_yes_and_no(self):
        rng = random.Random(2)
        for _ in range(10):
            yes = random_checksort_instance(12, 6, rng, yes=True)
            no = random_checksort_instance(12, 6, rng, yes=False)
            assert check_sort_deterministic(yes).accepted
            assert not check_sort_deterministic(no).accepted

    def test_wrong_multiset_rejected(self):
        inst = encode_instance(["0", "1"], ["0", "0"])
        assert not check_sort_deterministic(inst).accepted

    def test_empty_instance(self):
        assert check_sort_deterministic("").accepted

    @given(bit_words)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, words):
        inst = encode_instance(words, sorted(words))
        assert check_sort_deterministic(inst).accepted == CHECK_SORT(inst)
        assert check_sort_deterministic(inst).accepted

    def test_reversal_budget_holds(self):
        rng = random.Random(3)
        inst = random_checksort_instance(128, 8, rng, yes=True)
        result = check_sort_deterministic(inst)
        assert result.report.scans <= checksort_reversal_budget(128)


class TestEqualitySolvers:
    def test_multiset_solver(self):
        rng = random.Random(4)
        for _ in range(10):
            yes = random_equal_instance(10, 6, rng)
            no = random_unequal_instance(10, 6, rng)
            assert multiset_equality_deterministic(yes).accepted
            assert not multiset_equality_deterministic(no).accepted

    def test_set_solver_ignores_multiplicity(self):
        inst = encode_instance(["0", "0", "1"], ["1", "1", "0"])
        assert set_equality_deterministic(inst).accepted
        assert not multiset_equality_deterministic(inst).accepted

    @given(bit_words, bit_words)
    @settings(max_examples=60, deadline=None)
    def test_both_match_reference(self, first, second):
        k = min(len(first), len(second))
        inst = encode_instance(first[:k], second[:k])
        assert multiset_equality_deterministic(inst).accepted == MULTISET_EQUALITY(
            inst
        )
        assert set_equality_deterministic(inst).accepted == SET_EQUALITY(inst)

    def test_empty(self):
        assert multiset_equality_deterministic("").accepted
        assert set_equality_deterministic("").accepted

    def test_logarithmic_scans(self):
        rng = random.Random(5)
        for m in (16, 256):
            inst = random_equal_instance(m, 8, rng)
            result = multiset_equality_deterministic(inst)
            assert result.report.scans <= 2 * checksort_reversal_budget(m)
