"""Tests for the FLWOR `for` extension and problem complements."""

import pytest

from repro.errors import QuerySyntaxError
from repro.problems import MULTISET_EQUALITY, SET_EQUALITY, encode_instance
from repro.queries.xml import parse, serialize
from repro.queries.xquery import ForExpr, evaluate_xquery, parse_xquery

DOC = parse(
    "<instance>"
    "<set1><item><string>01</string></item><item><string>10</string></item></set1>"
    "<set2><item><string>10</string></item></set2>"
    "</instance>"
)


class TestForExpr:
    def test_parse(self):
        q = parse_xquery("for $x in /instance/set1/item/string return $x")
        assert isinstance(q, ForExpr)
        assert q.variable == "x"

    def test_evaluate_concatenates(self):
        out = evaluate_xquery(
            "for $x in /instance/set1/item/string return $x", DOC
        )
        assert [n.string_value() for n in out] == ["01", "10"]

    def test_for_inside_constructor(self):
        out = evaluate_xquery(
            "<all>{ for $x in /instance/set1/item/string return $x }</all>",
            DOC,
        )
        assert serialize(out[0]) == (
            "<all><string>01</string><string>10</string></all>"
        )

    def test_nested_for(self):
        out = evaluate_xquery(
            "for $x in /instance/set1/item/string return "
            "for $y in /instance/set2/item/string return <pair/>",
            DOC,
        )
        assert len(out) == 2  # 2 × 1 cross product of bindings

    def test_for_with_condition_body(self):
        # every binding evaluates the body; comparisons yield booleans
        out = evaluate_xquery(
            "for $x in /instance/set1/item/string return "
            "$x = /instance/set2/item/string",
            DOC,
        )
        assert out == [False, True]

    def test_parse_errors(self):
        with pytest.raises(QuerySyntaxError):
            parse_xquery("for x in /a return $x")  # missing '$'
        with pytest.raises(QuerySyntaxError):
            parse_xquery("for $x in /a")  # missing 'return'


class TestComplement:
    def test_complement_flips(self):
        co = SET_EQUALITY.complement()
        yes = encode_instance(["0"], ["0"])
        no = encode_instance(["0"], ["1"])
        assert not co(yes)
        assert co(no)
        assert co.name == "co-SET-EQUALITY"

    def test_double_complement(self):
        co_co = MULTISET_EQUALITY.complement().complement()
        inst = encode_instance(["0", "1"], ["1", "0"])
        assert co_co(inst) == MULTISET_EQUALITY(inst)

    def test_complement_preserves_promise(self):
        from repro.problems import short_variant

        short = short_variant(SET_EQUALITY, c=2)
        co = short.complement()
        long_instance = encode_instance(["0" * 30] * 4, ["0" * 30] * 4)
        assert not co.is_valid_instance(long_instance)
