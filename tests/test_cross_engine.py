"""Cross-engine consistency: every decision procedure in the library must
agree with the reference deciders — and with each other — on random and
adversarial instances.  One failure here means two subsystems disagree
about the same paper-defined problem."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    amplified_multiset_equality,
    multiset_equality_deterministic,
    multiset_equality_fingerprint_bitlevel,
    nondeterministic_accepts,
    set_equality_deterministic,
    sets_disjoint_deterministic,
)
from repro.problems import (
    DISJOINT_SETS,
    MULTISET_EQUALITY,
    SET_EQUALITY,
    decode_instance,
    encode_instance,
)
from repro.queries.relational import (
    StreamingEvaluator,
    evaluate,
    set_equality_database,
    symmetric_difference_query,
)
from repro.queries.xml import instance_to_document
from repro.queries.xml.streaming import (
    instance_to_token_tape,
    theorem12_query_streaming,
)
from repro.queries.xpath import figure1_query, matches

words = st.lists(st.text(alphabet="01", min_size=1, max_size=5), max_size=6)


def _instance(first, second):
    k = min(len(first), len(second))
    return decode_instance(encode_instance(first[:k], second[:k]))


class TestMultisetEqualityEngines:
    @given(words, words, st.integers(0, 2**32))
    @settings(max_examples=50, deadline=None)
    def test_all_engines_agree(self, first, second, seed):
        inst = _instance(first, second)
        rng = random.Random(seed)
        truth = MULTISET_EQUALITY(inst)
        assert multiset_equality_deterministic(inst).accepted == truth
        assert nondeterministic_accepts(inst) == truth
        # the randomized engines: completeness always; soundness w.h.p.
        amplified = amplified_multiset_equality(inst, rng, rounds=10)
        if truth:
            assert amplified
        bit = multiset_equality_fingerprint_bitlevel(inst.encode(), rng)
        if truth:
            assert bit.accepted
        if not bit.accepted:
            assert not truth


class TestSetEqualityEngines:
    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_all_engines_agree(self, first, second):
        inst = _instance(first, second)
        truth = SET_EQUALITY(inst)
        assert set_equality_deterministic(inst).accepted == truth
        assert nondeterministic_accepts(inst, problem="set-equality") == truth
        # relational algebra: reference and streaming
        db = set_equality_database(inst)
        query = symmetric_difference_query()
        assert evaluate(query, db).is_empty == truth
        assert StreamingEvaluator(db).evaluate(query).is_empty == truth
        # XPath protocol (exact filter both directions)
        fires = matches(figure1_query(), instance_to_document(inst)) or matches(
            figure1_query(), instance_to_document(inst.swapped())
        )
        assert (not fires) == truth
        # streaming XML (Theorem 12 on token tapes)
        tape, tracker = instance_to_token_tape(inst)
        assert theorem12_query_streaming(tape, tracker).answer == truth


class TestDisjointSetsEngines:
    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_solver_matches_reference(self, first, second):
        inst = _instance(first, second)
        assert sets_disjoint_deterministic(inst).accepted == DISJOINT_SETS(inst)

    def test_disjoint_solver_costs_match_equality(self):
        rng = random.Random(0)
        from repro.problems import random_equal_instance

        inst = random_equal_instance(64, 8, rng)
        dis = sets_disjoint_deterministic(inst)
        eq = set_equality_deterministic(inst)
        # both are sort-dominated: same order of magnitude of scans
        assert abs(dis.report.scans - eq.report.scans) <= 10
