"""Cross-engine consistency: every decision procedure in the library must
agree with the reference deciders — and with each other — on random and
adversarial instances.  One failure here means two subsystems disagree
about the same paper-defined problem.

Also here: the Turing-machine engine pair.  The reference engine
(:mod:`repro.machines.execute`) and the streaming engine
(:mod:`repro.machines.fast_engine`) must produce bit-identical
``Run.final``, ``RunStatistics`` and exact ``Fraction`` acceptance
probabilities on the machine library and on randomly generated machines —
the streaming engine earns its speedups only if nothing observable
changes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    amplified_multiset_equality,
    multiset_equality_deterministic,
    multiset_equality_fingerprint_bitlevel,
    nondeterministic_accepts,
    set_equality_deterministic,
    sets_disjoint_deterministic,
)
from repro.problems import (
    DISJOINT_SETS,
    MULTISET_EQUALITY,
    SET_EQUALITY,
    decode_instance,
    encode_instance,
)
from repro.queries.relational import (
    StreamingEvaluator,
    evaluate,
    set_equality_database,
    symmetric_difference_query,
)
from repro.queries.xml import instance_to_document
from repro.queries.xml.streaming import (
    instance_to_token_tape,
    theorem12_query_streaming,
)
from repro.queries.xpath import figure1_query, matches

words = st.lists(st.text(alphabet="01", min_size=1, max_size=5), max_size=6)


def _instance(first, second):
    k = min(len(first), len(second))
    return decode_instance(encode_instance(first[:k], second[:k]))


class TestMultisetEqualityEngines:
    @given(words, words, st.integers(0, 2**32))
    @settings(max_examples=50, deadline=None)
    def test_all_engines_agree(self, first, second, seed):
        inst = _instance(first, second)
        rng = random.Random(seed)
        truth = MULTISET_EQUALITY(inst)
        assert multiset_equality_deterministic(inst).accepted == truth
        assert nondeterministic_accepts(inst) == truth
        # the randomized engines: completeness always; soundness w.h.p.
        amplified = amplified_multiset_equality(inst, rng, rounds=10)
        if truth:
            assert amplified
        bit = multiset_equality_fingerprint_bitlevel(inst.encode(), rng)
        if truth:
            assert bit.accepted
        if not bit.accepted:
            assert not truth


class TestSetEqualityEngines:
    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_all_engines_agree(self, first, second):
        inst = _instance(first, second)
        truth = SET_EQUALITY(inst)
        assert set_equality_deterministic(inst).accepted == truth
        assert nondeterministic_accepts(inst, problem="set-equality") == truth
        # relational algebra: reference and streaming
        db = set_equality_database(inst)
        query = symmetric_difference_query()
        assert evaluate(query, db).is_empty == truth
        assert StreamingEvaluator(db).evaluate(query).is_empty == truth
        # XPath protocol (exact filter both directions)
        fires = matches(figure1_query(), instance_to_document(inst)) or matches(
            figure1_query(), instance_to_document(inst.swapped())
        )
        assert (not fires) == truth
        # streaming XML (Theorem 12 on token tapes)
        tape, tracker = instance_to_token_tape(inst)
        assert theorem12_query_streaming(tape, tracker).answer == truth


class TestDisjointSetsEngines:
    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_solver_matches_reference(self, first, second):
        inst = _instance(first, second)
        assert sets_disjoint_deterministic(inst).accepted == DISJOINT_SETS(inst)

    def test_disjoint_solver_costs_match_equality(self):
        rng = random.Random(0)
        from repro.problems import random_equal_instance

        inst = random_equal_instance(64, 8, rng)
        dis = sets_disjoint_deterministic(inst)
        eq = set_equality_deterministic(inst)
        # both are sort-dominated: same order of magnitude of scans
        assert abs(dis.report.scans - eq.report.scans) <= 10


# ---------------------------------------------------------------------------
# Turing-machine engines: reference (execute) vs. streaming (fast_engine)
# ---------------------------------------------------------------------------

from repro.errors import MachineError
from repro.machines import execute as reference_engine
from repro.machines import fast_engine as streaming_engine
from repro.machines.library import (
    coin_flip_machine,
    copy_machine,
    copy_reverse_machine,
    equality_machine,
    guess_bit_machine,
    majority_machine,
    parity_machine,
)
from repro.machines.random_machines import random_terminating_tm

from tests.settings_profiles import DIFFERENTIAL_SETTINGS, QUICK_SETTINGS

DETERMINISTIC_LIBRARY = (
    copy_machine,
    parity_machine,
    copy_reverse_machine,
    majority_machine,
    equality_machine,
)
RANDOMIZED_LIBRARY = (coin_flip_machine, guess_bit_machine)

tm_words = st.text(alphabet="01#", max_size=12)


class TestTuringEnginePair:
    @pytest.mark.parametrize(
        "factory", DETERMINISTIC_LIBRARY, ids=lambda f: f.__name__
    )
    @given(word=tm_words)
    @DIFFERENTIAL_SETTINGS
    def test_library_runs_identical(self, factory, word):
        machine = factory()
        if "#" in word and factory is not equality_machine:
            word = word.replace("#", "0")  # '#' only in equality's alphabet
        ref = reference_engine.run_deterministic(machine, word)
        fast = streaming_engine.run_deterministic(machine, word)
        assert fast.final == ref.final
        assert fast.statistics == ref.statistics
        # trace mode reproduces the reference Run object exactly
        assert (
            streaming_engine.run_deterministic(machine, word, trace=True) == ref
        )

    @given(
        seed=st.integers(0, 2**20),
        tapes=st.integers(1, 3),
        word=st.text(alphabet="01", max_size=8),
    )
    @DIFFERENTIAL_SETTINGS
    def test_random_machine_runs_identical(self, seed, tapes, word):
        machine = random_terminating_tm(
            seed, external_tapes=tapes, length=6
        )
        try:
            ref = reference_engine.run_deterministic(machine, word)
        except MachineError:
            with pytest.raises(MachineError):
                streaming_engine.run_deterministic(machine, word)
            return
        fast = streaming_engine.run_deterministic(machine, word)
        assert fast.final == ref.final
        assert fast.statistics == ref.statistics

    @pytest.mark.parametrize(
        "factory", RANDOMIZED_LIBRARY, ids=lambda f: f.__name__
    )
    @given(word=st.text(alphabet="01", max_size=8))
    @QUICK_SETTINGS
    def test_acceptance_probabilities_identical(self, factory, word):
        machine = factory()
        reference = reference_engine.acceptance_probability(machine, word)
        fast = streaming_engine.acceptance_probability(machine, word)
        assert fast == reference
        assert (fast.numerator, fast.denominator) == (
            reference.numerator,
            reference.denominator,
        )

    @given(
        word=st.text(alphabet="01", max_size=6),
        choices=st.lists(st.integers(1, 12), min_size=10, max_size=14),
    )
    @QUICK_SETTINGS
    def test_choice_runs_identical(self, word, choices):
        for factory in RANDOMIZED_LIBRARY:
            machine = factory()
            ref = reference_engine.run_with_choices(machine, word, choices)
            fast = streaming_engine.run_with_choices(machine, word, choices)
            assert fast.final == ref.final
            assert fast.statistics == ref.statistics


# ---------------------------------------------------------------------------
# Three-way differential: reference vs. streaming vs. compiled
# ---------------------------------------------------------------------------

from repro.errors import ReproError, StepBudgetExceeded
from repro.extmem import ResourceBudget, ResourceTracker
from repro.machines import compiled_engine as compiled_tier


class TestThreeWayDifferential:
    """Every engine tier must agree bit-for-bit — on results, on failure
    control flow (stuck / step-limit / choice exhaustion) and, for the
    tracker-bridging tiers, on budget-denial state."""

    @pytest.mark.parametrize(
        "factory", DETERMINISTIC_LIBRARY, ids=lambda f: f.__name__
    )
    @given(word=tm_words)
    @DIFFERENTIAL_SETTINGS
    def test_library_runs_identical(self, factory, word):
        machine = factory()
        if "#" in word and factory is not equality_machine:
            word = word.replace("#", "0")
        ref = reference_engine.run_deterministic(machine, word)
        for tier in (streaming_engine, compiled_tier):
            run = tier.run_deterministic(machine, word)
            assert run.final == ref.final
            assert run.statistics == ref.statistics

    @given(
        seed=st.integers(0, 2**20),
        tapes=st.integers(1, 3),
        word=st.text(alphabet="01", max_size=8),
        step_limit=st.sampled_from((5, 40, 10_000)),
    )
    @DIFFERENTIAL_SETTINGS
    def test_random_machines_agree_including_failures(
        self, seed, tapes, word, step_limit
    ):
        """Small step limits force the step-budget path; stuck machines
        force the no-transition path — all tiers must raise the same
        exception type with the same message, or all succeed equally."""
        machine = random_terminating_tm(seed, external_tapes=tapes, length=6)
        try:
            ref = reference_engine.run_deterministic(
                machine, word, step_limit=step_limit
            )
            outcome = None
        except (MachineError, StepBudgetExceeded) as exc:
            ref, outcome = None, exc
        for tier in (streaming_engine, compiled_tier):
            if outcome is None:
                run = tier.run_deterministic(
                    machine, word, step_limit=step_limit
                )
                assert run.final == ref.final
                assert run.statistics == ref.statistics
            else:
                with pytest.raises(type(outcome)) as exc:
                    tier.run_deterministic(
                        machine, word, step_limit=step_limit
                    )
                assert str(exc.value) == str(outcome)

    @given(
        word=st.text(alphabet="01", max_size=6),
        choices=st.lists(st.integers(1, 12), min_size=0, max_size=14),
    )
    @QUICK_SETTINGS
    def test_choice_runs_agree_including_exhaustion(self, word, choices):
        """Short choice sequences exhaust mid-run: the choice-exhaustion
        diagnosis must come from every tier identically."""
        for factory in RANDOMIZED_LIBRARY:
            machine = factory()
            try:
                ref = reference_engine.run_with_choices(machine, word, choices)
                outcome = None
            except MachineError as exc:
                ref, outcome = None, exc
            for tier in (streaming_engine, compiled_tier):
                if outcome is None:
                    run = tier.run_with_choices(machine, word, choices)
                    assert run.final == ref.final
                    assert run.statistics == ref.statistics
                else:
                    with pytest.raises(MachineError) as exc:
                        tier.run_with_choices(machine, word, choices)
                    assert str(exc.value) == str(outcome)

    @pytest.mark.parametrize(
        "factory", DETERMINISTIC_LIBRARY, ids=lambda f: f.__name__
    )
    @given(word=st.text(alphabet="01", min_size=1, max_size=8), cap=st.integers(1, 6))
    @QUICK_SETTINGS
    def test_budget_violations_agree(self, factory, word, cap):
        """Under a scan budget, streaming and compiled must deny at the
        same charge with the same exception and identical tracker state
        (the reference tier predates tracker bridging and sits this one
        out)."""
        machine = factory()
        outcomes = []
        for tier in (streaming_engine, compiled_tier):
            tracker = ResourceTracker(ResourceBudget(max_scans=cap))
            try:
                tier.run_deterministic(machine, word, tracker=tracker)
                outcomes.append((None, tracker.report()))
            except ReproError as exc:
                outcomes.append(((type(exc), str(exc)), tracker.report()))
        assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------------
# Five-way differential: the batch and SIMD tiers vs. every serial tier
# ---------------------------------------------------------------------------

from repro.machines import run_deterministic_batch, run_with_choices_batch

word_batches = st.lists(tm_words, max_size=5)


def _lane_signature(outcome):
    """What a lane must agree on across tiers: result or (type, message)."""
    if outcome.ok:
        return (outcome.result.final, outcome.result.statistics)
    return (type(outcome.error), str(outcome.error))


def _assert_batches_identical(batch_lanes, twin_lanes):
    assert [o.index for o in batch_lanes] == [o.index for o in twin_lanes]
    for got, exp in zip(batch_lanes, twin_lanes):
        assert _lane_signature(got) == _lane_signature(exp)


class TestFiveWayDifferential:
    """The batch and SIMD tiers are the fourth and fifth engines: every
    lane of a lock-step batch run must be bit-identical — result,
    contained-error control flow, and tracker state — to a serial run of
    the same word on each of the three serial tiers (which the three-way
    differential above already pins to each other).  Pinning
    ``engine="simd"`` exercises the vectorized path even below the
    ``auto`` crossover lane count."""

    @pytest.mark.parametrize(
        "factory", DETERMINISTIC_LIBRARY, ids=lambda f: f.__name__
    )
    @given(batch=word_batches)
    @DIFFERENTIAL_SETTINGS
    def test_library_batches_identical(self, factory, batch):
        machine = factory()
        if factory is not equality_machine:
            batch = [w.replace("#", "0") for w in batch]
        lanes = run_deterministic_batch(machine, batch)
        for engine in ("simd", "reference", "streaming", "compiled"):
            twin = run_deterministic_batch(machine, batch, engine=engine)
            _assert_batches_identical(lanes, twin)

    @given(
        seed=st.integers(0, 2**20),
        tapes=st.integers(1, 3),
        batch=st.lists(st.text(alphabet="01", max_size=8), max_size=4),
        step_limit=st.sampled_from((5, 40, 10_000)),
    )
    @DIFFERENTIAL_SETTINGS
    def test_random_machine_batches_agree_including_failures(
        self, seed, tapes, batch, step_limit
    ):
        """Small step limits retire lanes on the step-budget path; stuck
        machines retire lanes on the no-transition path — every retired
        lane must carry the same exception type and message the serial
        tiers raise for that word."""
        machine = random_terminating_tm(seed, external_tapes=tapes, length=6)
        lanes = run_deterministic_batch(machine, batch, step_limit=step_limit)
        for engine in ("simd", "reference", "streaming", "compiled"):
            twin = run_deterministic_batch(
                machine, batch, step_limit=step_limit, engine=engine
            )
            _assert_batches_identical(lanes, twin)

    @given(
        batch=st.lists(
            st.tuples(
                st.text(alphabet="01", max_size=6),
                st.lists(st.integers(1, 12), max_size=14),
            ),
            max_size=4,
        )
    )
    @QUICK_SETTINGS
    def test_choice_batches_agree_including_exhaustion(self, batch):
        """Short choice sequences exhaust mid-run: the exhaustion
        diagnosis must retire exactly the same lanes with the same
        message on every tier."""
        words = [w for w, _ in batch]
        choices = [c for _, c in batch]
        for factory in RANDOMIZED_LIBRARY:
            machine = factory()
            lanes = run_with_choices_batch(machine, words, choices)
            for engine in ("simd", "reference", "streaming", "compiled"):
                twin = run_with_choices_batch(
                    machine, words, choices, engine=engine
                )
                _assert_batches_identical(lanes, twin)

    @pytest.mark.parametrize(
        "factory", DETERMINISTIC_LIBRARY, ids=lambda f: f.__name__
    )
    @given(
        batch=st.lists(
            st.text(alphabet="01", min_size=1, max_size=8),
            min_size=1,
            max_size=4,
        ),
        cap=st.integers(1, 6),
    )
    @QUICK_SETTINGS
    def test_budget_denial_lanes_agree(self, factory, batch, cap):
        """Every lane carries its own tracker: denied lanes must stop at
        the same charge with the same exception and identical tracker
        state on the batch tier and both tracker-bridging serial tiers
        (the reference tier predates tracker bridging and sits this one
        out)."""
        machine = factory()
        results = []
        for engine in ("batch", "simd", "streaming", "compiled"):
            trackers = [
                ResourceTracker(ResourceBudget(max_scans=cap)) for _ in batch
            ]
            lanes = run_deterministic_batch(
                machine, batch, trackers=trackers, engine=engine
            )
            results.append(
                [
                    (_lane_signature(o), t.report())
                    for o, t in zip(lanes, trackers)
                ]
            )
        assert results[0] == results[1] == results[2] == results[3]
