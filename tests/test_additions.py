"""Tests for later additions: sampling, partitions, block traces, edges."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineError
from repro.extmem import ResourceBudget
from repro.listmachine.analysis import greedy_monotone_partition
from repro.listmachine.examples import coin_nlm, randomized_feature_parity_nlm
from repro.listmachine.run import sample_acceptance
from repro.listmachine.simulate_tm import block_trace
from repro.machines import copy_reverse_machine

WORDS = frozenset({"00", "01", "10", "11"})


class TestSampling:
    def test_matches_exact_on_coin(self):
        nlm = coin_nlm(WORDS, 1)
        rng = random.Random(0)
        estimate = sample_acceptance(nlm, ["01"], rng, trials=2000)
        assert abs(estimate - 0.5) < 0.05

    def test_deterministic_acceptance_is_exact(self):
        nlm = randomized_feature_parity_nlm(WORDS, 2)
        rng = random.Random(1)
        # yes-inputs are accepted by both branches → estimate is exactly 1
        assert sample_acceptance(nlm, ["01", "01"], rng, trials=50) == 1.0

    def test_trials_validated(self):
        nlm = coin_nlm(WORDS, 1)
        with pytest.raises(MachineError):
            sample_acceptance(nlm, ["01"], random.Random(0), trials=0)


class TestGreedyPartition:
    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=30))
    def test_pieces_are_monotone_and_partition(self, seq):
        pieces = greedy_monotone_partition(seq)
        # every piece monotone
        for piece in pieces:
            inc = all(a <= b for a, b in zip(piece, piece[1:]))
            dec = all(a >= b for a, b in zip(piece, piece[1:]))
            assert inc or dec
        # pieces partition the multiset of elements
        assert Counter(x for piece in pieces for x in piece) == Counter(seq)

    def test_empty(self):
        assert greedy_monotone_partition([]) == []

    def test_single_monotone_input(self):
        assert greedy_monotone_partition([1, 2, 3]) == [[1, 2, 3]]


class TestBlockTraceOnReversingMachine:
    def test_copy_reverse_trace(self):
        machine = copy_reverse_machine()
        trace = block_trace(machine, "0110")
        turns = [e for e in trace.events if e.kind == "turn"]
        assert len(turns) == 1  # the single reversal at the right end
        assert turns[0].tape == 0
        assert trace.run.accepts(machine)


class TestBudgetEdges:
    def test_unbounded_budget_never_fires(self):
        from repro.extmem import ResourceTracker

        tracker = ResourceTracker(ResourceBudget())
        tid = tracker.register_tape()
        for _ in range(100):
            tracker.charge_reversal(tid)
        tracker.charge_internal(10**9)
        assert tracker.scans == 101

    def test_report_within_tapes(self):
        from repro.extmem import ResourceTracker

        tracker = ResourceTracker()
        tracker.register_tape()
        tracker.register_tape()
        report = tracker.report()
        assert report.within(ResourceBudget(max_tapes=2))
        assert not report.within(ResourceBudget(max_tapes=1))
