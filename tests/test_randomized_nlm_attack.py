"""The Lemma 21 attack against a genuinely randomized list machine."""

import itertools
from fractions import Fraction

import pytest

from repro.listmachine import (
    acceptance_probability,
    lemma21_attack,
    run_with_choices,
)
from repro.listmachine.examples import randomized_feature_parity_nlm
from repro.listmachine.run import find_good_choice_sequence
from repro.problems import CheckPhiFamily


def _yes_family(m, n_bits):
    fam = CheckPhiFamily(m, n_bits)
    inputs = []
    for choices in itertools.product(
        *[fam.intervals.enumerate_interval(j) for j in range(m)]
    ):
        inst = fam.instance_from_choices(list(choices))
        inputs.append(tuple(inst.first) + tuple(inst.second))
    return fam, inputs


class TestRandomizedVictim:
    def setup_method(self):
        self.fam, self.yes_inputs = _yes_family(2, 3)
        self.alphabet = frozenset(v for inp in self.yes_inputs for v in inp)
        self.victim = randomized_feature_parity_nlm(self.alphabet, 4)

    def test_victim_is_randomized(self):
        assert not self.victim.is_deterministic
        assert len(self.victim.choices) == 2

    def test_accepts_every_yes_input_with_probability_one(self):
        for v in self.yes_inputs[:8]:
            assert acceptance_probability(self.victim, list(v)) == 1

    def test_lemma26_finds_a_good_sequence(self):
        seq, accepted = find_good_choice_sequence(
            self.victim, self.yes_inputs, length=6
        )
        assert len(accepted) == len(self.yes_inputs)

    def test_attack_succeeds(self):
        outcome = lemma21_attack(
            self.victim, self.yes_inputs, self.fam.phi, choice_length=6
        )
        assert outcome.success, outcome.detail
        u = outcome.fooling_input
        m = len(self.fam.phi)
        assert any(u[i] != u[m + self.fam.phi[i]] for i in range(m))
        # the fooling input is accepted with positive probability —
        # exactly the Pr(M accepts u) > 0 contradiction of Lemma 21
        assert acceptance_probability(self.victim, list(u)) > 0

    def test_branches_differ_on_some_input(self):
        # sanity: "first bit" and "last bit" branches genuinely disagree on
        # some non-yes input, so the machine is not just a duplicated
        # deterministic one
        found = False
        for v in itertools.product(sorted(self.alphabet), repeat=4):
            run_last = run_with_choices(self.victim, list(v), ["L"] * 8)
            run_first = run_with_choices(self.victim, list(v), ["F"] * 8)
            if run_last.accepts(self.victim) != run_first.accepts(self.victim):
                found = True
                break
        assert found
