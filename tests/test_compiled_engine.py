"""The compiled engine: dense-table lowering + macro-step run compression.

Identity is pinned three ways: against the reference engine (full final
configuration / statistics equality on the library and on random
machines), against the streaming engine under live ``ResourceTracker``
enforcement (identical exceptions *and* identical tracker reports at
every possible denial point), and via the front door's fallback rules
(``trace``/``probe``/uncompilable machines resolve to streaming).
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    MachineError,
    ReversalBudgetExceeded,
    SpaceBudgetExceeded,
    StepBudgetExceeded,
)
from repro.extmem import ResourceBudget, ResourceTracker
from repro.machines import (
    ENGINES,
    MachineBuilder,
    R,
    resolve_engine,
    run_deterministic,
    run_with_choices,
)
from repro.machines import compiled_engine, execute, fast_engine
from repro.machines.compiled_engine import dispatch_count, try_compile
from repro.machines.library import (
    coin_flip_machine,
    copy_machine,
    copy_reverse_machine,
    equality_machine,
    guess_bit_machine,
    majority_machine,
    parity_machine,
)
from repro.machines.random_machines import random_terminating_tm

from tests.settings_profiles import DIFFERENTIAL_SETTINGS, QUICK_SETTINGS

DETERMINISTIC_LIBRARY = (
    copy_machine,
    parity_machine,
    copy_reverse_machine,
    majority_machine,
    equality_machine,
)

tm_words = st.text(alphabet="01#", max_size=12)


def _word_for(factory, word):
    if "#" in word and factory is not equality_machine:
        return word.replace("#", "0")  # '#' only in equality's alphabet
    return word


def _uncompilable_machine():
    """Multi-character symbols cannot be lowered to byte tables."""
    b = MachineBuilder("wide").start("q").accept("a")
    b.on("q", ("0",), "q", ("xx",), (R,))
    b.on("q", ("xx",), "a", ("xx",), (R,))
    return b.build()


class TestCompilation:
    @pytest.mark.parametrize(
        "factory",
        DETERMINISTIC_LIBRARY + (coin_flip_machine, guess_bit_machine),
        ids=lambda f: f.__name__,
    )
    def test_library_compiles(self, factory):
        assert try_compile(factory()) is not None

    def test_program_is_cached_on_the_instance(self):
        machine = copy_machine()
        program = try_compile(machine)
        assert program is not None
        assert try_compile(machine) is program
        assert machine.__dict__["_compiled_program"] is program

    def test_negative_verdict_is_cached_too(self):
        machine = _uncompilable_machine()
        assert try_compile(machine) is None
        assert "_compiled_program" in machine.__dict__
        assert try_compile(machine) is None

    def test_sweep_eligible_cells_detected(self):
        # the machines the CI speedup gate runs on must have macro cells,
        # otherwise the >= 2x target is hopeless by construction
        for factory in (copy_machine, equality_machine, copy_reverse_machine):
            program = try_compile(factory())
            assert program.macro_cells > 0, factory.__name__


class TestCompiledMatchesReference:
    @pytest.mark.parametrize(
        "factory", DETERMINISTIC_LIBRARY, ids=lambda f: f.__name__
    )
    @given(word=tm_words)
    @DIFFERENTIAL_SETTINGS
    def test_library_runs_identical(self, factory, word):
        machine = factory()
        word = _word_for(factory, word)
        ref = execute.run_deterministic(machine, word)
        compiled = compiled_engine.run_deterministic(machine, word)
        assert compiled.final == ref.final
        assert compiled.statistics == ref.statistics

    @given(
        seed=st.integers(0, 2**20),
        tapes=st.integers(1, 3),
        word=st.text(alphabet="01", max_size=8),
    )
    @DIFFERENTIAL_SETTINGS
    def test_random_machine_runs_identical(self, seed, tapes, word):
        machine = random_terminating_tm(seed, external_tapes=tapes, length=6)
        try:
            ref = execute.run_deterministic(machine, word)
        except MachineError:
            with pytest.raises(MachineError):
                compiled_engine.run_deterministic(machine, word)
            return
        compiled = compiled_engine.run_deterministic(machine, word)
        assert compiled.final == ref.final
        assert compiled.statistics == ref.statistics

    @given(
        word=st.text(alphabet="01", max_size=6),
        choices=st.lists(st.integers(1, 12), min_size=10, max_size=14),
    )
    @QUICK_SETTINGS
    def test_choice_runs_identical(self, word, choices):
        for factory in (coin_flip_machine, guess_bit_machine):
            machine = factory()
            ref = execute.run_with_choices(machine, word, choices)
            compiled = compiled_engine.run_with_choices(machine, word, choices)
            assert compiled.final == ref.final
            assert compiled.statistics == ref.statistics

    def test_long_input_identical_with_sweeps_engaged(self):
        # long enough that macro sweeps dominate; identity must survive
        word = "01" * 256
        for factory in (copy_machine, copy_reverse_machine):
            machine = factory()
            ref = fast_engine.run_deterministic(machine, word)
            compiled = compiled_engine.run_deterministic(machine, word)
            assert compiled.final == ref.final
            assert compiled.statistics == ref.statistics
            assert dispatch_count(machine, word).compression > 10


class TestMacroCompression:
    def test_sweeps_compress_long_runs(self):
        stats = dispatch_count(copy_machine(), "1" * 512)
        assert stats.macro_cells > 0
        assert stats.compression > 50  # whole sweeps in one bounded jump

    def test_compression_never_below_one(self):
        for factory in DETERMINISTIC_LIBRARY:
            word = "0101#0101" if factory is equality_machine else "0101"
            stats = dispatch_count(factory(), word)
            assert stats.dispatches <= stats.steps or stats.steps == 0
            assert stats.compression >= 1.0

    def test_dispatch_count_rejects_uncompilable(self):
        with pytest.raises(MachineError):
            dispatch_count(_uncompilable_machine(), "00")


class TestTrackerParity:
    """Macro batches must charge the tracker bit-identically to per-step
    streaming: same exception (type and message) and same ``report()`` at
    every budget cap, including mid-sweep denials."""

    def _tracked(self, engine, machine, word, budget):
        tracker = ResourceTracker(budget)
        exc = None
        try:
            engine.run_deterministic(machine, word, tracker=tracker)
        except (ReversalBudgetExceeded, SpaceBudgetExceeded) as caught:
            exc = caught
        return tracker, exc

    @pytest.mark.parametrize(
        "factory",
        (equality_machine, copy_reverse_machine, majority_machine),
        ids=lambda f: f.__name__,
    )
    def test_every_scan_cap_denies_identically(self, factory):
        machine = factory()
        word = "0110#0110" if factory is equality_machine else "0110"
        free = ResourceTracker()
        fast_engine.run_deterministic(machine, word, tracker=free)
        need = free.scans
        for cap in range(1, need):
            budget = ResourceBudget(max_scans=cap)
            t_fast, e_fast = self._tracked(fast_engine, machine, word, budget)
            t_comp, e_comp = self._tracked(
                compiled_engine, machine, word, budget
            )
            assert type(e_fast) is type(e_comp)
            assert str(e_fast) == str(e_comp)
            assert t_fast.report() == t_comp.report()

    def test_every_internal_cap_denies_identically(self):
        machine = majority_machine()  # only library machine that grows
        word = "0101101"              # its internal counter tape
        free = ResourceTracker()
        fast_engine.run_deterministic(machine, word, tracker=free)
        peak = free.peak_internal_bits
        assert peak > 0
        for cap in range(peak):
            budget = ResourceBudget(max_internal_bits=cap)
            t_fast, e_fast = self._tracked(fast_engine, machine, word, budget)
            t_comp, e_comp = self._tracked(
                compiled_engine, machine, word, budget
            )
            assert type(e_fast) is type(e_comp)
            assert str(e_fast) == str(e_comp)
            assert t_fast.report() == t_comp.report()

    def test_unbudgeted_reports_identical(self):
        for factory in DETERMINISTIC_LIBRARY:
            machine = factory()
            word = "0101#0101" if factory is equality_machine else "0101"
            t_fast = ResourceTracker()
            t_comp = ResourceTracker()
            fast_engine.run_deterministic(machine, word, tracker=t_fast)
            compiled_engine.run_deterministic(machine, word, tracker=t_comp)
            assert t_fast.report() == t_comp.report()


class TestSharedControlFlow:
    def _stuck_machine(self):
        b = MachineBuilder("stuck").start("q").accept("a")
        b.on("q", ("0",), "q", ("0",), (R,))
        return b.build()

    def test_stuck_error_matches_streaming(self):
        machine = self._stuck_machine()
        messages = []
        for engine in (fast_engine, compiled_engine):
            with pytest.raises(MachineError) as exc:
                engine.run_deterministic(machine, "00")
            messages.append(str(exc.value))
        assert messages[0] == messages[1]
        assert "stuck" in messages[0]

    def test_step_budget_error_matches_streaming(self):
        from repro.extmem.tape import BLANK

        b = MachineBuilder("long").start("q").accept("a")
        b.on("q", (BLANK,), "q", ("0",), (R,))
        machine = b.build()
        messages = []
        for engine in (fast_engine, compiled_engine):
            with pytest.raises(StepBudgetExceeded) as exc:
                engine.run_deterministic(machine, "", step_limit=50)
            messages.append(str(exc.value))
        assert messages[0] == messages[1]

    def test_step_limit_denial_is_sweep_independent(self):
        # the guard must fire at the exact step even when a macro sweep
        # would have jumped past it: cap inside a long sweep
        machine = copy_machine()
        word = "1" * 200
        for limit in (7, 50, 199):
            messages = []
            for engine in (fast_engine, compiled_engine):
                with pytest.raises(StepBudgetExceeded) as exc:
                    engine.run_deterministic(machine, word, step_limit=limit)
                messages.append(str(exc.value))
            assert messages[0] == messages[1]

    def test_choice_exhaustion_matches_streaming(self):
        messages = []
        for engine in (fast_engine, compiled_engine):
            with pytest.raises(MachineError) as exc:
                engine.run_with_choices(coin_flip_machine(), "0", choices="")
            messages.append(str(exc.value))
        assert messages[0] == messages[1]
        assert "exhausted" in messages[0]


class TestFrontDoor:
    def test_auto_resolves_to_compiled_for_plain_runs(self):
        assert resolve_engine(copy_machine()) == "compiled"

    def test_trace_probe_and_uncompilable_fall_back(self):
        from repro.observability import EngineProbe

        machine = copy_machine()
        assert resolve_engine(machine, trace=True) == "streaming"
        assert resolve_engine(machine, probe=EngineProbe()) == "streaming"
        assert resolve_engine(_uncompilable_machine()) == "streaming"

    def test_pinned_tiers_resolve_to_themselves(self):
        machine = copy_machine()
        assert resolve_engine(machine, engine="reference") == "reference"
        assert resolve_engine(machine, engine="streaming") == "streaming"
        assert resolve_engine(machine, engine="compiled") == "compiled"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError) as exc:
            run_deterministic(copy_machine(), "01", engine="turbo")
        assert "turbo" in str(exc.value)
        for name in ENGINES:
            assert name in str(exc.value)

    def test_reference_with_tracker_rejected(self):
        with pytest.raises(ValueError):
            run_deterministic(
                copy_machine(),
                "01",
                engine="reference",
                tracker=ResourceTracker(),
            )

    def test_front_door_trace_returns_reference_run(self):
        machine = equality_machine()
        word = "010#010"
        ref = execute.run_deterministic(machine, word)
        assert run_deterministic(machine, word, trace=True) == ref
        assert run_deterministic(machine, word, engine="reference") == ref

    def test_front_door_auto_matches_pinned_tiers(self):
        machine = copy_reverse_machine()
        word = "0110"
        auto = run_deterministic(machine, word)
        for engine in ("streaming", "compiled"):
            pinned = run_deterministic(machine, word, engine=engine)
            assert pinned.final == auto.final
            assert pinned.statistics == auto.statistics

    def test_front_door_choices_stay_lazy(self):
        # choices may draw from an RNG on access: exactly one access per
        # step, in order, on every tier (so compiled never macro-steps)
        accesses = []

        class Lazy:
            def __len__(self):
                return 64

            def __getitem__(self, index):
                accesses.append(index)
                return 1

        run_with_choices(coin_flip_machine(), "01", Lazy())
        assert accesses == sorted(accesses)
        assert len(accesses) == len(set(accesses))
