"""Tests for the block-trace simulation (Lemma 16 machinery)."""

import pytest

from repro.listmachine.simulate_tm import (
    BlockPartition,
    block_trace,
    blocks_respect_lemma30,
)
from repro.machines import copy_machine, equality_machine, parity_machine


class TestBlockPartition:
    def test_single_block_initially(self):
        p = BlockPartition()
        assert p.block_count == 1
        assert p.block_of(5) == (0, None)

    def test_split(self):
        p = BlockPartition()
        p.split_at(3)
        assert p.block_count == 2
        assert p.block_of(2) == (0, 3)
        assert p.block_of(3) == (3, None)

    def test_split_idempotent(self):
        p = BlockPartition()
        p.split_at(3)
        p.split_at(3)
        assert p.block_count == 2

    def test_split_at_zero_is_noop(self):
        p = BlockPartition()
        p.split_at(0)
        assert p.block_count == 1

    def test_blocks_partition(self):
        p = BlockPartition()
        for cut in (7, 2, 5):
            p.split_at(cut)
        # every position belongs to exactly one block, blocks are ordered
        regions = [p.block_of(i) for i in range(10)]
        for i in range(9):
            lo, hi = regions[i]
            assert lo <= i and (hi is None or i < hi)


class TestBlockTrace:
    def test_copy_machine_no_events_on_unsegmented_input(self):
        # no '#', single block per tape, no reversals → no events at all
        trace = block_trace(copy_machine(), "0101")
        assert trace.events == ()
        assert trace.list_machine_steps == 1

    def test_parity_machine_single_block(self):
        trace = block_trace(parity_machine(), "110")
        assert trace.events == ()

    def test_equality_machine_events(self):
        machine = equality_machine()
        trace = block_trace(machine, "0110#0110")
        # tape 2 turns twice (rewind, then forward comparison)
        turns = [e for e in trace.events if e.kind == "turn"]
        assert len(turns) == sum(
            trace.run.statistics.reversals_per_tape[: machine.external_tapes]
        )
        assert all(e.tape == 1 for e in turns)

    def test_acceptance_preserved(self):
        machine = equality_machine()
        for word in ("01#01", "01#10"):
            trace = block_trace(machine, word)
            assert trace.run.accepts(machine) == (
                word.split("#")[0] == word.split("#")[1]
            )

    def test_block_growth_bounded(self):
        machine = equality_machine()
        word = "0101#0101"
        trace = block_trace(machine, word)
        segments = word.count("#") + 1  # '#' terminates a segment
        assert blocks_respect_lemma30(trace, machine, segments)
        assert blocks_respect_lemma30(trace, machine)

    def test_list_machine_steps_bounded_by_tm_steps(self):
        machine = equality_machine()
        trace = block_trace(machine, "010#010")
        assert trace.list_machine_steps <= trace.run.statistics.length

    def test_input_blocks_follow_separators(self):
        machine = equality_machine()
        trace = block_trace(machine, "0#1")
        # tape 1 starts with a cut after the first '#'
        assert 2 in trace.final_partitions[0]


class TestBlockReconstruction:
    """The reconstructibility invariant of Lemma 16: departure snapshots
    plus the live block reproduce every tape exactly."""

    @pytest.mark.parametrize(
        "word",
        ["01#01", "0110#0110", "0110#0111", "0#1", "#", "010101#101010"],
    )
    def test_equality_machine(self, word):
        from repro.listmachine.simulate_tm import verify_block_reconstruction

        machine = equality_machine()
        trace = block_trace(machine, word)
        assert verify_block_reconstruction(trace, machine, word)

    def test_writing_machines(self):
        from repro.listmachine.simulate_tm import verify_block_reconstruction
        from repro.machines import copy_reverse_machine

        for machine, word in (
            (copy_machine(), "010101"),
            (copy_reverse_machine(), "0110"),
        ):
            trace = block_trace(machine, word)
            assert verify_block_reconstruction(trace, machine, word)

    def test_snapshots_cover_all_departures(self):
        machine = equality_machine()
        trace = block_trace(machine, "0110#0110")
        crosses = sum(1 for e in trace.events if e.kind == "cross")
        # at least one snapshot per cross; splits add more
        assert len(trace.snapshot_events) >= crosses
