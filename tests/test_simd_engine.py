"""The SIMD engine: NumPy state-cohort kernels over structure-of-arrays lanes.

Lane identity is pinned against the compiled tier, same contract as the
batch engine: for every lane, result, contained error and tracker state
must equal a serial ``compiled_engine`` run of the same word.  The tests
here cover the SIMD-specific machinery — cohort-regrouping invariance
(a lane's outcome must not depend on which other lanes share its batch,
their order, or how ``np.unique`` happens to split the rounds into
state cohorts), the byte-identical batch-tier fallback when NumPy is
absent or the machine cannot be lowered, the ``engine="auto"`` crossover
in :func:`repro.machines.resolve_batch_engine`, program caching and its
pickle strip, and the ``kind="simd"`` observability surface.  The wide
randomized sweep lives in ``tests/test_cross_engine.py``
(``TestFiveWayDifferential``).
"""

import pickle
import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError, ReproError
from repro.extmem import ResourceBudget, ResourceTracker
from repro.machines import (
    SIMD_CROSSOVER,
    MachineBuilder,
    R,
    TuringMachine,
    is_simd_available,
    resolve_batch_engine,
    run_deterministic_batch,
)
from repro.machines import batch_engine, compiled_engine, simd_engine
from repro.machines.simd_engine import try_compile_simd
from repro.machines.library import (
    coin_flip_machine,
    copy_machine,
    copy_reverse_machine,
    equality_machine,
    majority_machine,
    parity_machine,
)

from tests.settings_profiles import SIMD_SETTINGS

DETERMINISTIC_LIBRARY = (
    copy_machine,
    parity_machine,
    copy_reverse_machine,
    majority_machine,
    equality_machine,
)

# Lanes drawn from this alphabet exercise every retirement path: "01" runs
# to completion, "#" is valid only for the equality machine, and "2" is a
# bad input symbol everywhere — a contained per-lane encode error.
LANE_ALPHABET = "01#2"


def _uncompilable_machine():
    """Multi-character symbols cannot be lowered to byte tables."""
    b = MachineBuilder("wide").start("q").accept("a")
    b.on("q", ("0",), "q", ("xx",), (R,))
    b.on("q", ("xx",), "a", ("xx",), (R,))
    return b.build()


def _compiled_twin(machine, word, step_limit=None, tracker=None):
    """The serial oracle for one lane: result or (type, message)."""
    kwargs = {}
    if step_limit is not None:
        kwargs["step_limit"] = step_limit
    if tracker is not None:
        kwargs["tracker"] = tracker
    try:
        return compiled_engine.run_deterministic(machine, word, **kwargs)
    except ReproError as exc:
        return (type(exc), str(exc))


def _assert_lane_matches(outcome, twin):
    if isinstance(twin, tuple):
        assert not outcome.ok
        assert (type(outcome.error), str(outcome.error)) == twin
    else:
        assert outcome.ok
        assert outcome.result.final == twin.final
        assert outcome.result.statistics == twin.statistics


def _sig(outcome):
    """A lane outcome's batch-position-independent signature."""
    if outcome.ok:
        return ("ok", outcome.result.final, outcome.result.statistics)
    return ("err", type(outcome.error), str(outcome.error))


class TestAvailability:
    def test_available_with_numpy_present(self):
        # the container ships NumPy; the SIMD tier must see it
        assert is_simd_available()

    def test_unavailable_without_numpy(self, monkeypatch):
        monkeypatch.setattr(simd_engine, "_np", None)
        assert not is_simd_available()

    def test_compile_declines_before_cache_without_numpy(self, monkeypatch):
        monkeypatch.setattr(simd_engine, "_np", None)
        machine = copy_machine()
        assert try_compile_simd(machine) is None
        # the availability test runs *before* the cache, so a NumPy-less
        # process never poisons the memo with a spurious "uncompilable"
        assert "_simd_program" not in machine.__dict__


class TestFrontDoorResolution:
    def test_auto_crosses_over_at_simd_crossover(self):
        machine = copy_machine()
        assert resolve_batch_engine(machine, SIMD_CROSSOVER) == "simd"
        assert resolve_batch_engine(machine, SIMD_CROSSOVER - 1) == "batch"

    def test_pinned_tiers_resolve_to_themselves(self):
        machine = copy_machine()
        # a pinned "simd" vectorizes even below the crossover (its own
        # fallbacks stay byte-identical); a pinned "batch" never promotes
        assert resolve_batch_engine(machine, 1, engine="simd") == "simd"
        assert resolve_batch_engine(machine, 4096, engine="batch") == "batch"

    def test_trackers_keep_auto_on_batch(self):
        machine = copy_machine()
        trackers = [ResourceTracker(ResourceBudget())] * SIMD_CROSSOVER
        assert resolve_batch_engine(
            machine, SIMD_CROSSOVER, trackers=trackers
        ) == "batch"

    def test_uncompilable_machine_keeps_auto_on_batch(self):
        assert resolve_batch_engine(
            _uncompilable_machine(), SIMD_CROSSOVER
        ) == "batch"

    def test_numpy_absent_keeps_auto_on_batch(self, monkeypatch):
        monkeypatch.setattr(simd_engine, "_np", None)
        assert resolve_batch_engine(copy_machine(), SIMD_CROSSOVER) == "batch"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_batch_engine(copy_machine(), 4, engine="vector")

    def test_auto_batch_runs_vectorized_above_crossover(self):
        machine = majority_machine()
        words = ["01" * (i % 5) for i in range(SIMD_CROSSOVER)]
        outcomes = run_deterministic_batch(machine, words)
        for word, outcome in zip(words, outcomes):
            _assert_lane_matches(outcome, _compiled_twin(machine, word))


class TestFallbacks:
    def test_numpy_absent_entry_point_matches_batch(self, monkeypatch):
        machine = equality_machine()
        words = ["0110#0110", "0110#0111", "#", "2", "01#0", ""]
        want = [
            _sig(o)
            for o in batch_engine.run_deterministic_batch(machine, words)
        ]
        monkeypatch.setattr(simd_engine, "_np", None)
        got = [
            _sig(o)
            for o in simd_engine.run_deterministic_batch(machine, words)
        ]
        assert got == want

    def test_uncompilable_machine_falls_back_and_caches_verdict(self):
        machine = _uncompilable_machine()
        outcomes = simd_engine.run_deterministic_batch(machine, ["0", "00"])
        for word, outcome in zip(["0", "00"], outcomes):
            _assert_lane_matches(outcome, _compiled_twin(machine, word))
        assert try_compile_simd(machine) is None
        assert (
            machine.__dict__["_simd_program"] is simd_engine._UNCOMPILABLE
        )
        # the memoized verdict short-circuits the second compile attempt
        assert try_compile_simd(machine) is None

    def test_nondeterministic_machine_rejected(self):
        with pytest.raises(MachineError, match="is not deterministic"):
            simd_engine.run_deterministic_batch(coin_flip_machine(), ["0"])

    def test_choice_batches_delegate_to_batch_tier(self):
        machine = coin_flip_machine()
        outcomes = simd_engine.run_with_choices_batch(
            machine, ["0", "1"], [[0, 0, 0, 0], [1, 1, 1, 1]]
        )
        twins = batch_engine.run_with_choices_batch(
            machine, ["0", "1"], [[0, 0, 0, 0], [1, 1, 1, 1]]
        )
        assert [_sig(o) for o in outcomes] == [_sig(t) for t in twins]

    def test_empty_batch(self):
        assert simd_engine.run_deterministic_batch(copy_machine(), []) == []


class TestProgramCache:
    def test_simd_program_listed_in_cache_attrs(self):
        assert "_simd_program" in TuringMachine._CACHE_ATTRS

    def test_pickle_strips_simd_program(self):
        machine = copy_machine()
        assert try_compile_simd(machine) is not None
        assert "_simd_program" in machine.__dict__
        clone = pickle.loads(pickle.dumps(machine))
        assert "_simd_program" not in clone.__dict__
        # the unpickled twin rebuilds its own program and still runs
        (outcome,) = simd_engine.run_deterministic_batch(clone, ["0110"])
        _assert_lane_matches(outcome, _compiled_twin(machine, "0110"))


class TestTrackedLanes:
    def test_budget_lanes_match_compiled_including_tracker_state(self):
        machine = copy_machine()
        words = ["01" * 8, "1" * 30, "", "0"]
        for cap in (0, 1, 2, 5, 100):
            trackers = [
                ResourceTracker(ResourceBudget(max_scans=cap)) for _ in words
            ]
            outcomes = simd_engine.run_deterministic_batch(
                machine, words, trackers=trackers
            )
            for word, outcome, tracker in zip(words, outcomes, trackers):
                twin_tracker = ResourceTracker(ResourceBudget(max_scans=cap))
                twin = _compiled_twin(machine, word, tracker=twin_tracker)
                _assert_lane_matches(outcome, twin)
                assert tracker.report() == twin_tracker.report()


class TestCohortRegrouping:
    """A lane's outcome is invariant under regrouping of its batch.

    The SIMD tier partitions live lanes into state cohorts with
    ``np.unique`` every round, so batch composition decides which lanes
    share a kernel dispatch, how large each cohort is (including empty
    and size-1 cohorts), and when mid-round retirement shrinks the live
    set.  None of that may leak into any lane's result.
    """

    @given(
        factory=st.sampled_from(DETERMINISTIC_LIBRARY),
        words=st.lists(
            st.text(alphabet=LANE_ALPHABET, max_size=10),
            min_size=1,
            max_size=24,
        ),
        step_limit=st.sampled_from((1, 3, 7, 10_000)),
        seed=st.integers(0, 2**16),
    )
    @SIMD_SETTINGS
    def test_lane_permutation_invariance(
        self, factory, words, step_limit, seed
    ):
        machine = factory()
        perm = list(range(len(words)))
        random.Random(seed).shuffle(perm)
        base = run_deterministic_batch(
            machine, words, step_limit=step_limit, engine="simd"
        )
        shuffled = run_deterministic_batch(
            machine,
            [words[i] for i in perm],
            step_limit=step_limit,
            engine="simd",
        )
        for pos, src in enumerate(perm):
            assert _sig(shuffled[pos]) == _sig(base[src])

    @given(
        factory=st.sampled_from(DETERMINISTIC_LIBRARY),
        words=st.lists(
            st.text(alphabet=LANE_ALPHABET, max_size=12),
            min_size=1,
            max_size=24,
        ),
        step_limit=st.sampled_from((1, 4, 9, 10_000)),
    )
    @SIMD_SETTINGS
    def test_mixed_lanes_match_compiled(self, factory, words, step_limit):
        # mixed lengths and bad-symbol lanes retire at different rounds,
        # so every example exercises mid-round live-set shrinkage
        machine = factory()
        outcomes = run_deterministic_batch(
            machine, words, step_limit=step_limit, engine="simd"
        )
        assert [o.index for o in outcomes] == list(range(len(words)))
        for word, outcome in zip(words, outcomes):
            _assert_lane_matches(
                outcome, _compiled_twin(machine, word, step_limit)
            )

    @given(
        words=st.lists(
            st.text(alphabet="01", max_size=8), min_size=1, max_size=12
        ),
        step_limit=st.sampled_from((2, 6, 10_000)),
    )
    @SIMD_SETTINGS
    def test_singleton_batches_agree_with_full_batch(self, words, step_limit):
        # size-1 cohorts are the degenerate regrouping: each lane alone
        # must reproduce its outcome from the shared batch exactly
        machine = majority_machine()
        full = run_deterministic_batch(
            machine, words, step_limit=step_limit, engine="simd"
        )
        for word, outcome in zip(words, full):
            (solo,) = run_deterministic_batch(
                machine, [word], step_limit=step_limit, engine="simd"
            )
            assert _sig(solo) == _sig(outcome)

    @given(
        words=st.lists(
            st.text(alphabet=LANE_ALPHABET, max_size=8),
            min_size=1,
            max_size=10,
        ),
    )
    @SIMD_SETTINGS
    def test_duplicated_lanes_stay_identical(self, words):
        # doubling the batch doubles every cohort; the twin lanes must
        # retire with byte-identical outcomes
        machine = equality_machine()
        outcomes = run_deterministic_batch(
            machine, words + words, engine="simd"
        )
        n = len(words)
        for i in range(n):
            assert _sig(outcomes[i]) == _sig(outcomes[n + i])


class TestObservability:
    def test_simd_counters_histograms_and_span(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.trace import Tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        machine = copy_machine()
        name = machine.name
        words = ["0110", "1", "", "01" * 10]
        outcomes = simd_engine.run_deterministic_batch(
            machine, words, registry=registry, tracer=tracer
        )
        assert all(o.ok for o in outcomes)
        assert registry.counter("batch_lanes_dispatched").value(
            machine=name
        ) == 4
        assert registry.counter("batch_lanes_retired").value(
            machine=name
        ) == 4
        # at least one state cohort per round actually dispatched
        cohorts = registry.counter("batch_cohorts").value(machine=name)
        assert cohorts > 0
        hist = registry.histogram("batch_lanes_per_dispatch")
        assert hist.count(machine=name) == cohorts
        (span,) = [
            s for s in tracer.spans() if s.name == f"simd-run:{name}"
        ]
        assert span.category == "engine"
        assert span.args["lanes"] == 4

    def test_fallback_path_still_instruments(self):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        machine = _uncompilable_machine()
        simd_engine.run_deterministic_batch(
            machine, ["0", "00"], registry=registry
        )
        assert registry.counter("batch_lanes_dispatched").value(
            machine=machine.name
        ) == 2
