"""Cross-module property tests: random ASTs, step invariants, random walks."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.extmem import RecordTape, ResourceTracker, SymbolTape
from repro.listmachine import initial_configuration, successor
from repro.listmachine.examples import single_scan_parity_nlm, tandem_compare_nlm
from repro.queries.relational import (
    AttrEquals,
    Database,
    Difference,
    Product,
    Projection,
    Relation,
    RelationRef,
    Rename,
    Selection,
    StreamingEvaluator,
    Union,
    evaluate,
)

# ---------------------------------------------------------------------------
# Random relational-algebra expressions: streaming ≡ reference
# ---------------------------------------------------------------------------

_VALUES = ["0", "1", "00", "01", "10", "11"]


def _db_strategy():
    rows = st.lists(
        st.tuples(st.sampled_from(_VALUES), st.sampled_from(_VALUES)),
        max_size=6,
    )
    return st.tuples(rows, rows).map(
        lambda pair: Database(
            {
                "A": Relation.create(("x", "y"), pair[0]),
                "B": Relation.create(("x", "y"), pair[1]),
            }
        )
    )


def _expr_strategy():
    base = st.sampled_from([RelationRef("A"), RelationRef("B")])

    def extend(children):
        unary = st.one_of(
            st.tuples(children, st.sampled_from(_VALUES)).map(
                lambda t: Selection(AttrEquals("x", t[1]), t[0])
            ),
            children.map(lambda c: Projection(("x",), c)),
            children.map(lambda c: Projection(("y", "x"), c)),
            children.map(lambda c: Rename((("x", "x2"),), c)),
        )
        binary = st.tuples(children, children).flatmap(
            lambda pair: st.sampled_from(
                [Union(pair[0], pair[1]), Difference(pair[0], pair[1])]
            )
        )
        return st.one_of(unary, binary)

    return st.recursive(base, extend, max_leaves=5)


class TestRandomAlgebraExpressions:
    @given(_db_strategy(), _expr_strategy())
    @settings(max_examples=60, deadline=None)
    def test_streaming_matches_reference(self, db, expr):
        from repro.errors import QueryEvaluationError

        try:
            reference = evaluate(expr, db)
        except QueryEvaluationError:
            # schema-invalid expression (e.g. union after incompatible
            # projections): the streaming evaluator must reject it too
            with pytest.raises(QueryEvaluationError):
                StreamingEvaluator(db).evaluate(expr)
            return
        streaming = StreamingEvaluator(db).evaluate(expr)
        assert streaming.tuples == reference.tuples
        assert streaming.schema.attributes == reference.schema.attributes

    @given(_db_strategy())
    @settings(max_examples=30, deadline=None)
    def test_difference_union_identity(self, db):
        """(A − B) ∪ (A ∩ B)-ish sanity: (A−B) ∪ (B−A) ∪ (A∩B via A−(A−B))
        reconstructs A ∪ B."""
        a, b = RelationRef("A"), RelationRef("B")
        sym = Union(Difference(a, b), Difference(b, a))
        inter = Difference(a, Difference(a, b))
        rebuilt = evaluate(Union(sym, inter), db)
        assert rebuilt.tuples == evaluate(Union(a, b), db).tuples


# ---------------------------------------------------------------------------
# NLM single-step invariants under random drive
# ---------------------------------------------------------------------------

WORDS = ("00", "01", "10", "11")


class TestNLMStepInvariants:
    def _drive(self, nlm, values, steps):
        config = initial_configuration(nlm, values)
        seen = [config]
        for _ in range(steps):
            if config.is_final(nlm):
                break
            config, move = successor(nlm, config, nlm.choices[0])
            seen.append(config)
        return seen

    @given(
        st.lists(st.sampled_from(WORDS), min_size=2, max_size=5),
        st.lists(st.sampled_from(WORDS), min_size=2, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_heads_always_on_lists(self, first, second):
        m = min(len(first), len(second))
        nlm = tandem_compare_nlm(frozenset(WORDS), m)
        for config in self._drive(nlm, first[:m] + second[:m], 200):
            for i in range(nlm.t):
                assert 0 <= config.positions[i] < len(config.lists[i])
                assert config.directions[i] in (-1, +1)

    @given(st.lists(st.sampled_from(WORDS), min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_list_growth_at_most_t_per_step(self, values):
        nlm = single_scan_parity_nlm(frozenset(WORDS), len(values))
        trail = self._drive(nlm, values, 200)
        for prev, curr in zip(trail, trail[1:]):
            assert (
                curr.total_list_length - prev.total_list_length <= nlm.t
            )
            # lists never shrink (footnote 4 of the paper)
            assert curr.total_list_length >= prev.total_list_length

    @given(st.lists(st.sampled_from(WORDS), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_input_tokens_conserved(self, values):
        """Input tokens are never destroyed on the input list prefix the
        head has not passed: every position appears somewhere."""
        nlm = tandem_compare_nlm(frozenset(WORDS), len(values) // 2 or 1)
        m = (len(values) // 2 or 1) * 2
        trail = self._drive(nlm, values[:m], 200)
        from repro.listmachine.skeleton import positions_in_cell

        for config in trail:
            present = set()
            for lst in config.lists:
                for cell in lst:
                    present.update(positions_in_cell(cell))
            # the machine reads positions in order; anything it has not
            # consumed yet must still sit on list 1
            assert present <= set(range(m))


# ---------------------------------------------------------------------------
# Tape random walks: reversal accounting is exactly direction changes
# ---------------------------------------------------------------------------


class TestTapeRandomWalks:
    @given(st.lists(st.sampled_from([+1, -1]), max_size=60))
    def test_record_tape_reversals_equal_direction_changes(self, moves):
        tracker = ResourceTracker()
        tape = RecordTape(list(range(100)), tracker=tracker)
        direction = +1
        expected = 0
        for mv in moves:
            if mv == -1 and tape.head == 0 and tape.direction == -1:
                # the explicit spin guard: no silent no-op, no charge
                with pytest.raises(ReproError):
                    tape.move(mv)
                continue
            if mv != direction:
                expected += 1
                direction = mv
            tape.move(mv)
        assert tracker.reversals == expected
        assert tracker.scans == expected + 1

    @given(st.lists(st.sampled_from([+1, -1]), max_size=60))
    def test_symbol_tape_matches_record_tape_accounting(self, moves):
        t1 = ResourceTracker()
        t2 = ResourceTracker()
        sym = SymbolTape("0" * 100, tracker=t1)
        rec = RecordTape(["0"] * 100, tracker=t2)
        for mv in moves:
            # a repeated left move at the wall: the symbol tape no-ops
            # (Definition 24(c)), the record tape raises — both charge
            # nothing and leave the head in place, so accounting agrees
            if mv == -1 and rec.head == 0 and rec.direction == -1:
                sym.move(mv)
                with pytest.raises(ReproError):
                    rec.move(mv)
            else:
                sym.move(mv)
                rec.move(mv)
            assert t1.reversals == t2.reversals
            assert sym.head == rec.head

    @given(st.lists(st.sampled_from([+1, -1]), min_size=1, max_size=60))
    def test_head_never_negative(self, moves):
        tape = RecordTape(["a", "b"])
        for mv in moves:
            if mv == -1 and tape.head == 0 and tape.direction == -1:
                with pytest.raises(ReproError):
                    tape.move(mv)
                continue
            tape.move(mv)
            assert tape.head >= 0
