"""Tests for the Theorem 8(a) fingerprinting machine."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    amplified_multiset_equality,
    fingerprint_parameters,
    fingerprint_space_budget,
    multiset_equality_fingerprint,
)
from repro.errors import EncodingError
from repro.numbertheory import is_prime
from repro.problems import (
    MULTISET_EQUALITY,
    encode_instance,
    near_miss_instance,
    random_equal_instance,
    random_unequal_instance,
)

bit_words = st.lists(st.text(alphabet="01", min_size=1, max_size=10), max_size=8)


class TestParameters:
    def test_k_formula(self):
        params = fingerprint_parameters(encode_instance(["0101"], ["0101"]))
        # m=1, n=4 → n_eff=5, base=5, k = 5·ceil(log2 5) = 15
        assert params.k == 15
        assert 3 * params.k < params.p2 <= 6 * params.k
        assert is_prime(params.p2)

    def test_empty_instance_has_no_parameters(self):
        with pytest.raises(EncodingError):
            fingerprint_parameters("")

    def test_space_budget_is_logarithmic(self):
        # budget(N²) ≤ 2.5 · budget(N): grows like log N, not like N
        for n_power in range(4, 16):
            small = fingerprint_space_budget(2**n_power)
            big = fingerprint_space_budget(2 ** (2 * n_power))
            assert big <= 2.5 * small


class TestOneSidedness:
    """Equal multisets must be accepted with probability 1."""

    def test_equal_always_accepted(self):
        rng = random.Random(0)
        for trial in range(30):
            inst = random_equal_instance(rng.randint(1, 10), rng.randint(1, 12), rng)
            result = multiset_equality_fingerprint(inst, rng)
            assert result.accepted

    def test_empty_instance_accepted(self):
        result = multiset_equality_fingerprint("", random.Random(0))
        assert result.accepted

    @given(bit_words, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60, deadline=None)
    def test_property_no_false_negatives(self, words, seed):
        rng = random.Random(seed)
        shuffled = list(words)
        rng.shuffle(shuffled)
        inst = encode_instance(words, shuffled)
        assert multiset_equality_fingerprint(inst, rng).accepted


class TestErrorBound:
    def test_unequal_rejected_mostly(self):
        rng = random.Random(1)
        accepts = 0
        trials = 200
        for _ in range(trials):
            inst = random_unequal_instance(8, 8, rng)
            if multiset_equality_fingerprint(inst, rng).accepted:
                accepts += 1
        assert accepts / trials <= 0.5  # the paper's bound; in practice ≈ 0

    def test_near_miss_rejected_mostly(self):
        rng = random.Random(2)
        accepts = sum(
            multiset_equality_fingerprint(near_miss_instance(8, 10, rng), rng).accepted
            for _ in range(200)
        )
        assert accepts / 200 <= 0.5

    def test_mixed_length_values_handled_injectively(self):
        # "01" vs "1": same integer, different strings — the injectivity
        # prefix must keep these apart (with overwhelming probability)
        rng = random.Random(3)
        inst = encode_instance(["01", "1"], ["1", "1"])
        accepts = sum(
            multiset_equality_fingerprint(inst, rng).accepted for _ in range(100)
        )
        assert accepts <= 50

    def test_amplification_drives_error_down(self):
        rng = random.Random(4)
        accepts = sum(
            amplified_multiset_equality(random_unequal_instance(4, 4, rng), rng, rounds=8)
            for _ in range(100)
        )
        assert accepts <= 5

    def test_amplification_preserves_completeness(self):
        rng = random.Random(5)
        inst = random_equal_instance(6, 6, rng)
        assert amplified_multiset_equality(inst, rng, rounds=12)

    def test_amplification_validates_rounds(self):
        with pytest.raises(EncodingError):
            amplified_multiset_equality("0#0#", random.Random(0), rounds=0)


class TestTrialWithRange:
    def test_non_binary_value_raises_encoding_error(self):
        # Instance.__post_init__ normally rejects this, so forge a corrupt
        # one the way a buggy caller could: the trial must still fail with
        # the domain error, not a bare ValueError from int(..., 2)
        from repro.algorithms.fingerprint import fingerprint_trial_with_range
        from repro.problems.encoding import Instance

        inst = Instance.__new__(Instance)
        object.__setattr__(inst, "first", ("01", "2x"))
        object.__setattr__(inst, "second", ("01", "2x"))
        with pytest.raises(EncodingError):
            fingerprint_trial_with_range(inst, random.Random(0), k=64)

    def test_valid_equal_instance_accepts(self):
        from repro.algorithms.fingerprint import fingerprint_trial_with_range

        inst = random_equal_instance(4, 4, random.Random(7))
        assert fingerprint_trial_with_range(inst, random.Random(7), k=64)


class TestResourceEnvelope:
    """co-RST(2, O(log N), 1): the budget is enforced, not just measured."""

    def test_two_scans_one_tape(self):
        rng = random.Random(6)
        inst = random_equal_instance(16, 16, rng)
        result = multiset_equality_fingerprint(inst, rng)
        assert result.report.scans <= 2
        assert result.report.tapes_used == 1
        assert result.report.reversals <= 1

    def test_internal_memory_within_log_budget(self):
        rng = random.Random(7)
        for m, n in [(4, 8), (16, 16), (64, 16), (128, 32)]:
            inst = random_equal_instance(m, n, rng)
            result = multiset_equality_fingerprint(inst, rng)
            assert result.report.peak_internal_bits <= fingerprint_space_budget(
                inst.size
            )

    def test_space_scales_logarithmically(self):
        rng = random.Random(8)
        peaks = {}
        for m in (8, 64, 512):
            inst = random_equal_instance(m, 16, rng)
            result = multiset_equality_fingerprint(inst, rng)
            peaks[m] = result.report.peak_internal_bits
        # N grows 64×; peak bits should grow far slower (log-like)
        assert peaks[512] <= 3 * peaks[8]

    def test_transcript_fields_populated(self):
        rng = random.Random(9)
        inst = random_equal_instance(4, 6, rng)
        result = multiset_equality_fingerprint(inst, rng)
        assert result.p1 is not None and is_prime(result.p1)
        assert result.p1 <= result.parameters.k
        assert 1 <= result.x < result.parameters.p2
        assert result.sum_first == result.sum_second


class TestAgainstReference:
    @given(bit_words, bit_words, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60, deadline=None)
    def test_rejection_implies_truly_unequal(self, first, second, seed):
        """One-sidedness as a property: a REJECT answer is always correct."""
        if len(first) != len(second):
            first = first[: len(second)]
            second = second[: len(first)]
        rng = random.Random(seed)
        inst = encode_instance(first, second)
        result = multiset_equality_fingerprint(inst, rng)
        if not result.accepted:
            assert not MULTISET_EQUALITY(inst)
