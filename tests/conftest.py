"""Shared test configuration: a forgiving hypothesis profile.

Tape-level simulations make some examples slow on loaded CI machines;
the deadline is disabled globally so health checks measure correctness,
not scheduler jitter.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
