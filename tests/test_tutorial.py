"""Executable version of docs/TUTORIAL.md — every snippet must keep working."""

import itertools
import random

import pytest

from repro.algorithms import (
    multiset_equality_deterministic,
    multiset_equality_fingerprint,
)
from repro.core import Containment, CoRST, GrowthRate, RST, ST
from repro.errors import ReversalBudgetExceeded
from repro.extmem import (
    InternalMemory,
    RecordTape,
    ResourceBudget,
    ResourceTracker,
)
from repro.listmachine import lemma21_attack, run_deterministic, skeleton_of_run
from repro.listmachine.examples import single_scan_parity_nlm, tandem_compare_nlm
from repro.listmachine.render import render_run, render_skeleton
from repro.problems import (
    CHECK_SORT,
    MULTISET_EQUALITY,
    CheckPhiFamily,
    encode_instance,
)
from repro.queries.relational import (
    StreamingEvaluator,
    parse_algebra,
    set_equality_database,
)
from repro.queries.xml import instance_to_document
from repro.queries.xpath import figure1_query, matches

INST = encode_instance(["10", "01"], ["01", "10"])


def test_section1_cost_model():
    tracker = ResourceTracker()
    tape = RecordTape(["0110", "1010", "0001"], tracker=tracker)
    list(tape.scan())
    tape.rewind()
    assert tracker.reversals == 2
    assert tracker.scans == 3

    tracker = ResourceTracker(ResourceBudget(max_scans=1))
    tape = RecordTape(["a", "b"], tracker=tracker)
    list(tape.scan())
    with pytest.raises(ReversalBudgetExceeded):
        tape.move(-1)

    mem = InternalMemory()
    mem["acc"] = 255
    mem["acc"] = 1
    assert mem.used_bits == 1 and mem.peak_bits == 8


def test_section2_problems():
    assert MULTISET_EQUALITY(INST)
    assert CHECK_SORT(INST)  # ["01", "10"] is indeed sorted ascending


def test_section3_upper_and_lower():
    result = multiset_equality_fingerprint(INST, random.Random(0))
    assert result.accepted and result.report.scans <= 2
    assert multiset_equality_deterministic(INST).accepted

    family = CheckPhiFamily(2, 3)
    yes = []
    for choice in itertools.product(
        *[family.intervals.enumerate_interval(j) for j in range(2)]
    ):
        i = family.instance_from_choices(list(choice))
        yes.append(tuple(i.first) + tuple(i.second))
    victim = single_scan_parity_nlm(
        frozenset(v for row in yes for v in row), 4
    )
    outcome = lemma21_attack(victim, yes, family.phi, r=1)
    assert outcome.success


def test_section4_classes():
    const, log = GrowthRate.const(), GrowthRate.log()
    assert RST(const, log).contains("MULTISET-EQUALITY") == Containment.NO
    assert CoRST(const, log, 1).contains("MULTISET-EQUALITY") == Containment.YES
    assert ST(log, const, 2).contains("CHECK-SORT") == Containment.YES
    assert ST(const, log).contains("DISJOINT-SETS") == Containment.OPEN


def test_section5_queries():
    query = parse_algebra("(R1 - R2) union (R2 - R1)")
    evaluator = StreamingEvaluator(set_equality_database(INST))
    assert evaluator.evaluate(query).is_empty
    assert not matches(figure1_query(), instance_to_document(INST))


def test_section6_rendering():
    nlm = tandem_compare_nlm(frozenset({"00", "01", "10", "11"}), 2)
    run = run_deterministic(nlm, ["01", "10", "10", "01"])
    assert "ACCEPT" in render_run(run, nlm)
    assert "skeleton" in render_skeleton(skeleton_of_run(run))
