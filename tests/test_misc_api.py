"""Coverage of remaining public API corners."""

import pytest

from repro.errors import MachineError, ReproError
from repro.extmem import SymbolTape
from repro.machines import MachineBuilder, run_deterministic
from repro.machines.tm import N, R


class TestBuilderOnEach:
    def test_on_each_expands_per_symbol(self):
        b = MachineBuilder("flip").start("q").accept("done")
        b.on_each(
            ["0", "1"],
            "q",
            lambda s: (s,),
            "q",
            lambda s: ("1" if s == "0" else "0",),
            (R,),
        )
        from repro.extmem.tape import BLANK

        b.on("q", (BLANK,), "done", (BLANK,), (N,))
        machine = b.build()
        run = run_deterministic(machine, "0011")
        assert run.final.tapes[0] == "1100"

    def test_symbols_forced_into_alphabet(self):
        b = MachineBuilder("x").start("q").accept("q").symbols("@")
        machine = b.build()
        assert "@" in machine.alphabet


class TestSymbolTapeMisc:
    def test_stay_is_free(self):
        t = SymbolTape("ab")
        t.stay()
        assert t.head == 0 and t.reversals == 0

    def test_repr_contains_head(self):
        t = SymbolTape("abc", name="demo")
        assert "demo" in repr(t)

    def test_space_used_monotone(self):
        t = SymbolTape("ab")
        before = t.space_used
        t.move(+1)
        t.move(+1)
        t.write("x")
        assert t.space_used >= before


class TestErrorsHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        for name in (
            "ResourceError",
            "ReversalBudgetExceeded",
            "SpaceBudgetExceeded",
            "TapeBudgetExceeded",
            "StepBudgetExceeded",
            "MachineError",
            "TransitionError",
            "EncodingError",
            "QueryError",
            "QuerySyntaxError",
            "QueryEvaluationError",
            "XMLError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_budget_errors_carry_numbers(self):
        from repro.errors import ReversalBudgetExceeded, SpaceBudgetExceeded

        err = ReversalBudgetExceeded(5, 3, tape=2)
        assert err.used == 5 and err.budget == 3 and err.tape == 2
        assert "tape 2" in str(err)
        err2 = SpaceBudgetExceeded(100, 64)
        assert "100" in str(err2)


class TestVersionAndMain:
    def test_version_importable(self):
        import repro

        assert repro.__version__

    def test_main_module_runs(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro"], capture_output=True, text=True
        )
        assert proc.returncode == 0
        assert "results verified" in proc.stdout


class TestGrowthRateEdges:
    def test_bad_exponent_rejected(self):
        from repro.core.bounds import GrowthRate, _fraction

        with pytest.raises(ReproError):
            _fraction(1.5)

    def test_string_exponents(self):
        from repro.core.bounds import GrowthRate

        rate = GrowthRate.make("1/4", "-1")
        assert str(rate) == "N^1/4·(log N)^-1"

    def test_theorem6_applies_wrapper(self):
        from repro.core.bounds import GrowthRate
        from repro.lowerbounds.parameters import theorem6_applies

        assert theorem6_applies(GrowthRate.const(), GrowthRate.log())
        with pytest.raises(ReproError):
            theorem6_applies("not-a-rate", GrowthRate.log())
