"""Tests for skeletons, comparisons, merge lemma, bounds, composition."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineError
from repro.listmachine import (
    check_run_shape,
    compared_pairs,
    compared_phi_pairs,
    compose_inputs,
    lemma21_attack,
    lemma30_cell_size_bound,
    lemma30_list_length_bound,
    lemma31_run_length_bound,
    lemma32_skeleton_bound,
    merge_lemma_holds,
    monotone_cover_size,
    occurring_position_sequence,
    run_deterministic,
    skeleton_of_run,
)
from repro.listmachine.analysis import _exact_monotone_cover, _greedy_monotone_cover
from repro.listmachine.bounds import lemma32_skeleton_bound_log2
from repro.listmachine.composition import verify_composition_lemma
from repro.listmachine.examples import (
    single_scan_parity_nlm,
    tandem_compare_nlm,
)
from repro.listmachine.skeleton import (
    WILDCARD,
    reconstruct_run,
    skeleton_view,
)
from repro.lowerbounds import phi_permutation, sortedness

WORDS = frozenset({"00", "01", "10", "11"})


class TestSkeletons:
    def test_single_scan_machine_compares_nothing(self):
        """A one-scan machine's local views never hold two positions."""
        nlm = single_scan_parity_nlm(WORDS, 4)
        run = run_deterministic(nlm, ["01", "10", "00", "11"])
        skel = skeleton_of_run(run)
        assert compared_pairs(skel) == frozenset()

    def test_tandem_machine_compares_reversal_pairs(self):
        m = 3
        nlm = tandem_compare_nlm(WORDS, m)
        values = ["00", "01", "10"] + ["10", "01", "00"]
        run = run_deterministic(nlm, values)
        assert run.accepts(nlm)
        pairs = compared_pairs(skeleton_of_run(run))
        expected = {frozenset((m - 1 - j, m + j)) for j in range(m)}
        assert expected <= pairs
        # and nothing couples two first-half or two second-half positions
        for pair in pairs:
            a, b = sorted(pair)
            assert a < m <= b

    def test_skeleton_is_input_independent_for_oblivious_machine(self):
        """The parity machine's head motion ignores values, but its *state*
        encodes the running parity, so skeletons split by parity prefix —
        inputs with identical parity prefixes share a skeleton."""
        nlm = single_scan_parity_nlm(WORDS, 2)
        s1 = skeleton_of_run(run_deterministic(nlm, ["01", "01"]))
        s2 = skeleton_of_run(run_deterministic(nlm, ["11", "11"]))
        s3 = skeleton_of_run(run_deterministic(nlm, ["00", "00"]))
        assert s1 == s2  # both start with a 1-parity value
        assert s1 != s3  # different parity trace

    def test_wildcard_for_stationary_steps(self):
        from repro.listmachine.nlm import NLM

        def alpha(state, cells, c):
            if state == "a":
                return ("b", ((+1, False), (+1, False)))  # nothing moves
            return ("acc", ((+1, False), (-1, False)))  # head 2 turns

        nlm = NLM(
            t=2,
            m=1,
            input_alphabet=WORDS,
            choices=("c",),
            states=frozenset({"a", "b", "acc"}),
            initial_state="a",
            alpha=alpha,
            final_states=frozenset({"acc"}),
            accepting_states=frozenset({"acc"}),
        )
        run = run_deterministic(nlm, ["01"])
        skel = skeleton_of_run(run)
        assert skel.views[1] == WILDCARD
        assert skel.views[2] != WILDCARD

    def test_reconstruction(self):
        nlm = tandem_compare_nlm(WORDS, 2)
        values = ["01", "10", "10", "01"]
        run = run_deterministic(nlm, values)
        skel = skeleton_of_run(run)
        rebuilt = reconstruct_run(nlm, values, skel, run.choices_used)
        assert rebuilt.configurations == run.configurations

    def test_reconstruction_detects_mismatch(self):
        nlm = single_scan_parity_nlm(WORDS, 2)
        run = run_deterministic(nlm, ["01", "01"])
        skel = skeleton_of_run(run)
        with pytest.raises(MachineError):
            reconstruct_run(nlm, ["00", "00"], skel, run.choices_used)

    def test_skeleton_view_positions(self):
        nlm = tandem_compare_nlm(WORDS, 2)
        run = run_deterministic(nlm, ["01", "10", "10", "01"])
        # find a comparison view: it must expose exactly two positions
        views = [v for v in skeleton_of_run(run).views if v != WILDCARD]
        paired = [v for v in views if len(v.positions()) == 2]
        assert paired, "tandem machine must produce comparison views"


class TestMonotoneCover:
    def test_monotone_sequences_cover_one(self):
        assert monotone_cover_size([1, 2, 3, 4]) == 1
        assert monotone_cover_size([4, 3, 2, 1]) == 1
        assert monotone_cover_size([]) == 0

    def test_known_two_cover(self):
        assert monotone_cover_size([1, 3, 2, 4]) <= 2

    def test_exact_beats_greedy_sometimes(self):
        seq = [2, 4, 1, 3]
        exact = _exact_monotone_cover(seq, 4)
        assert exact is not None and exact <= _greedy_monotone_cover(seq)

    @given(st.permutations(list(range(10))))
    def test_exact_is_sound_cover_size(self, seq):
        seq = seq[: len(seq)]
        size = monotone_cover_size(seq)
        assert 1 <= size <= len(seq)
        # Erdős–Szekeres-style sanity: a cover of q monotone pieces bounds
        # the length by q · sortedness (distinct values)
        assert len(seq) <= size * sortedness(seq)


class TestMergeLemma:
    def test_holds_for_parity_machine(self):
        nlm = single_scan_parity_nlm(WORDS, 4)
        run = run_deterministic(nlm, ["01", "10", "00", "11"])
        r = run.scan_count(nlm)
        assert merge_lemma_holds(run, nlm, r)

    def test_holds_for_tandem_machine(self):
        nlm = tandem_compare_nlm(WORDS, 3)
        run = run_deterministic(nlm, ["00", "01", "10", "10", "01", "00"])
        r = run.scan_count(nlm)
        assert merge_lemma_holds(run, nlm, r)

    def test_occurring_sequence_reads_lists_in_order(self):
        nlm = tandem_compare_nlm(WORDS, 2)
        run = run_deterministic(nlm, ["01", "10", "10", "01"])
        # after the copy phase the pile on list 2 holds positions 0, 1 in order
        mid = run.configurations[2]
        seq = occurring_position_sequence(mid, 1)
        assert seq == (0, 1)

    def test_lemma38_bound(self):
        m = 4
        phi = phi_permutation(m)  # [0, 2, 1, 3]
        nlm = tandem_compare_nlm(WORDS, m)
        values = ["00", "01", "10", "11", "11", "10", "01", "00"]
        run = run_deterministic(nlm, values)
        skel = skeleton_of_run(run)
        compared = compared_phi_pairs(skel, m, phi)
        r = run.scan_count(nlm)
        bound = nlm.t ** (2 * r) * sortedness(phi)
        assert len(compared) <= bound


class TestShapeBounds:
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_lemma30_31_on_tandem(self, m):
        nlm = tandem_compare_nlm(WORDS, m)
        values = (["01"] * m) + (["01"] * m)
        run = run_deterministic(nlm, values)
        r = run.scan_count(nlm)
        report = check_run_shape(run, nlm, r)
        assert report.all_within, report

    def test_lemma30_31_on_parity(self):
        nlm = single_scan_parity_nlm(WORDS, 6)
        run = run_deterministic(nlm, ["01"] * 6)
        report = check_run_shape(run, nlm, run.scan_count(nlm))
        assert report.all_within, report

    def test_bound_formulas(self):
        assert lemma30_list_length_bound(2, 1, 4) == 12
        assert lemma30_cell_size_bound(2, 1) == 22
        assert lemma31_run_length_bound(k=5, t=2, r=1, m=4) == 5 + 5 * 9 * 4
        assert lemma32_skeleton_bound(1, 1, 2, 0) == (1 + 1 + 3) ** (
            12 * 9 + 24
        )

    def test_lemma32_log_matches(self):
        import math

        exact = lemma32_skeleton_bound(2, 5, 2, 1)
        assert abs(lemma32_skeleton_bound_log2(2, 5, 2, 1) - math.log2(exact)) < 1e-6

    def test_lemma32_covers_enumeration(self):
        """Enumerate actual skeletons of a tiny machine over all inputs —
        their count must stay (absurdly far) below the Lemma 32 bound."""
        nlm = single_scan_parity_nlm(WORDS, 2)
        skeletons = set()
        for values in itertools.product(sorted(WORDS), repeat=2):
            run = run_deterministic(nlm, list(values))
            skeletons.add(skeleton_of_run(run))
        assert len(skeletons) <= 4  # one per parity trace
        assert lemma32_skeleton_bound_log2(nlm.m, nlm.k, nlm.t, 1) > 10


class TestComposition:
    def test_compose_inputs(self):
        u = compose_inputs(("a", "b", "c"), ("x", "y", "z"), [1])
        assert u == ("a", "y", "c")

    def test_compose_validates(self):
        with pytest.raises(MachineError):
            compose_inputs(("a",), ("x", "y"), [0])
        with pytest.raises(MachineError):
            compose_inputs(("a",), ("x",), [3])

    def test_lemma34_on_parity_machine(self):
        """The composition lemma, end to end, on a concrete machine."""
        nlm = single_scan_parity_nlm(WORDS, 4)
        # positions 0 and 2 never compared (no pair ever is); v, w differ
        # exactly there, same parity trace, both accepted
        v = ("01", "10", "01", "10")  # parities 1,0,1,0 → xor 0, accept
        w = ("11", "10", "11", "10")  # parities 1,0,1,0 → same trace
        witness = verify_composition_lemma(nlm, v, w, 0, 2, ["c"] * 10)
        assert witness.skeleton_preserved
        assert witness.verdict_preserved
        assert witness.accepted

    def test_lemma34_rejects_compared_positions(self):
        m = 2
        nlm = tandem_compare_nlm(WORDS, m)
        # positions 1 and 2 are compared by the tandem machine (pair j=0)
        v = ("01", "10", "10", "01")
        w = ("01", "11", "11", "01")
        with pytest.raises(MachineError):
            verify_composition_lemma(nlm, v, w, 1, 2, ["c"] * 20)

    def test_lemma34_rejects_extra_differences(self):
        nlm = single_scan_parity_nlm(WORDS, 4)
        v = ("01", "10", "01", "10")
        w = ("11", "11", "11", "10")
        with pytest.raises(MachineError):
            verify_composition_lemma(nlm, v, w, 0, 2, ["c"] * 10)


class TestLemma21Attack:
    def _yes_family(self, m, n_bits=2):
        """All yes-inputs of the equality-under-φ promise with tiny values."""
        from repro.problems import CheckPhiFamily

        fam = CheckPhiFamily(m, n_bits)
        inputs = []
        for choices in itertools.product(
            *[fam.intervals.enumerate_interval(j) for j in range(m)]
        ):
            inst = fam.instance_from_choices(list(choices))
            inputs.append(tuple(inst.first) + tuple(inst.second))
        return fam, inputs

    def test_attack_demolishes_parity_machine(self):
        m = 2
        fam, yes_inputs = self._yes_family(m, n_bits=3)
        alphabet = frozenset(
            v for inp in yes_inputs for v in inp
        )
        nlm = single_scan_parity_nlm(alphabet, 2 * m)
        outcome = lemma21_attack(nlm, yes_inputs, fam.phi, r=1)
        assert outcome.success
        u = outcome.fooling_input
        # the fooling input really is a no-instance the machine accepts
        phi = fam.phi
        assert any(u[i] != u[m + phi[i]] for i in range(m))
        assert run_deterministic(nlm, list(u)).accepts(nlm)

    def test_attack_demolishes_constant_accepter(self):
        from repro.listmachine.examples import constant_accept_nlm

        m = 2
        fam, yes_inputs = self._yes_family(m, n_bits=3)
        alphabet = frozenset(v for inp in yes_inputs for v in inp)
        nlm = constant_accept_nlm(alphabet, 2 * m)
        outcome = lemma21_attack(nlm, yes_inputs, fam.phi, r=1)
        assert outcome.success

    def test_attack_reports_diagnostics(self):
        m = 2
        fam, yes_inputs = self._yes_family(m, n_bits=3)
        alphabet = frozenset(v for inp in yes_inputs for v in inp)
        nlm = single_scan_parity_nlm(alphabet, 2 * m)
        outcome = lemma21_attack(nlm, yes_inputs, fam.phi, r=1)
        assert outcome.accepted_yes_fraction == 1.0
        assert outcome.largest_class_size >= 2
        assert outcome.uncompared_index is not None

    def test_attack_validates_input_shape(self):
        nlm = single_scan_parity_nlm(WORDS, 4)
        with pytest.raises(MachineError):
            lemma21_attack(nlm, [("01",)], [0, 1], r=1)
        with pytest.raises(MachineError):
            lemma21_attack(nlm, [], [0, 1], r=1)
