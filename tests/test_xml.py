"""Tests for the XML substrate: tokens, documents, instance encoding."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import XMLError
from repro.problems import decode_instance, encode_instance, random_equal_instance
from repro.queries.xml import (
    Document,
    Element,
    EndTag,
    StartTag,
    Text,
    TextNode,
    document_to_instance,
    instance_to_document,
    parse,
    serialize,
    tokenize,
)
from repro.queries.xml.tokens import well_formed


class TestTokenizer:
    def test_basic(self):
        toks = list(tokenize("<a><b>hi</b></a>"))
        assert toks == [
            StartTag("a"),
            StartTag("b"),
            Text("hi"),
            EndTag("b"),
            EndTag("a"),
        ]

    def test_self_closing(self):
        assert list(tokenize("<a/>")) == [StartTag("a"), EndTag("a")]

    def test_whitespace_skipped(self):
        toks = list(tokenize("<a>\n  <b/>\n</a>"))
        assert Text("") not in toks
        assert len(toks) == 4

    def test_unterminated_tag(self):
        with pytest.raises(XMLError):
            list(tokenize("<a"))

    def test_attributes_rejected(self):
        with pytest.raises(XMLError):
            list(tokenize('<a x="1"/>'))

    def test_well_formed(self):
        assert well_formed(list(tokenize("<a><b/></a>")))
        assert not well_formed([StartTag("a")])
        assert not well_formed([StartTag("a"), EndTag("b")])
        assert not well_formed([Text("loose")])
        assert not well_formed(
            [StartTag("a"), EndTag("a"), StartTag("b"), EndTag("b")]
        )


class TestDocument:
    def test_parse_and_structure(self):
        doc = parse("<r><x>1</x><x>2</x></r>")
        assert doc.root.name == "r"
        xs = doc.root.child_elements("x")
        assert [x.string_value() for x in xs] == ["1", "2"]

    def test_parent_pointers(self):
        doc = parse("<r><x><y/></x></r>")
        y = doc.root.child_elements("x")[0].child_elements("y")[0]
        assert [a.name for a in y.ancestors()] == ["x", "r"]

    def test_string_value_concatenates(self):
        doc = parse("<r>a<x>b</x>c</r>")
        assert doc.root.string_value() == "abc"

    def test_mismatched_tags(self):
        with pytest.raises(XMLError):
            parse("<a><b></a></b>")

    def test_unclosed(self):
        with pytest.raises(XMLError):
            parse("<a><b></b>")

    def test_multiple_roots(self):
        with pytest.raises(XMLError):
            parse("<a></a><b></b>")

    def test_text_outside_root(self):
        with pytest.raises(XMLError):
            parse("hello<a/>")

    def test_empty(self):
        with pytest.raises(XMLError):
            parse("")

    def test_serialize_roundtrip(self):
        source = "<r><x>01</x><y/></r>"
        assert serialize(parse(source).root) == source

    def test_all_nodes(self):
        doc = parse("<r><x>1</x></r>")
        kinds = [type(n).__name__ for n in doc.all_nodes()]
        assert kinds == ["Element", "Element", "TextNode"]


class TestInstanceEncoding:
    def test_paper_shape(self):
        doc = instance_to_document("01#10#10#01#")
        text = serialize(doc.root)
        assert text == (
            "<instance>"
            "<set1><item><string>01</string></item>"
            "<item><string>10</string></item></set1>"
            "<set2><item><string>10</string></item>"
            "<item><string>01</string></item></set2>"
            "</instance>"
        )

    def test_roundtrip(self):
        rng = random.Random(0)
        inst = random_equal_instance(5, 6, rng)
        doc = instance_to_document(inst)
        back = document_to_instance(doc)
        assert back.first == inst.first
        assert back.second == inst.second

    def test_empty_strings_representable(self):
        inst = decode_instance("##")
        doc = instance_to_document(inst)
        back = document_to_instance(doc)
        assert back.first == ("",)

    def test_stream_length_linear(self):
        rng = random.Random(1)
        small = instance_to_document(random_equal_instance(4, 8, rng))
        large = instance_to_document(random_equal_instance(16, 8, rng))
        assert 3 <= large.stream_length / small.stream_length <= 5

    def test_decode_rejects_wrong_shape(self):
        with pytest.raises(XMLError):
            document_to_instance(parse("<wrong/>"))
        with pytest.raises(XMLError):
            document_to_instance(parse("<instance><set1/></instance>"))
        with pytest.raises(XMLError):
            document_to_instance(
                parse(
                    "<instance><set1><item><string>0</string></item></set1>"
                    "<set2></set2></instance>"
                )
            )

    def test_decode_rejects_nonbinary(self):
        with pytest.raises(XMLError):
            document_to_instance(
                parse(
                    "<instance><set1><item><string>ab</string></item></set1>"
                    "<set2><item><string>ab</string></item></set2></instance>"
                )
            )

    @given(
        st.lists(st.text(alphabet="01", min_size=1, max_size=6), min_size=1, max_size=6)
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, words):
        inst = decode_instance(encode_instance(words, list(reversed(words))))
        doc = instance_to_document(inst)
        # serialize → reparse → decode: full pipeline identity
        reparsed = parse(serialize(doc.root))
        back = document_to_instance(reparsed)
        assert list(back.first) == words
