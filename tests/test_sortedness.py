"""Tests for Definition 19 / Remark 20: sortedness and the permutation φ."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.lowerbounds import (
    erdos_szekeres_bound,
    phi_one_based,
    phi_permutation,
    phi_sortedness_bound,
    sortedness,
    sortedness_bruteforce,
)
from repro.lowerbounds.sortedness import verify_phi


class TestSortedness:
    def test_identity_and_reverse(self):
        assert sortedness(list(range(10))) == 10
        assert sortedness(list(reversed(range(10)))) == 10

    def test_empty_and_singleton(self):
        assert sortedness([]) == 0
        assert sortedness([5]) == 1

    def test_known_value(self):
        # [0,2,1,3]: LIS = 3 (0,2,3), LDS = 2
        assert sortedness([0, 2, 1, 3]) == 3

    @given(st.permutations(list(range(8))))
    def test_matches_bruteforce(self, perm):
        assert sortedness(perm) == sortedness_bruteforce(perm)

    @given(st.permutations(list(range(16))))
    def test_erdos_szekeres_holds(self, perm):
        assert sortedness(perm) >= erdos_szekeres_bound(16)

    def test_erdos_szekeres_bound_values(self):
        assert erdos_szekeres_bound(0) == 0
        assert erdos_szekeres_bound(1) == 1
        assert erdos_szekeres_bound(16) == 4
        assert erdos_szekeres_bound(17) == 5


class TestPhi:
    def test_small_cases(self):
        assert phi_permutation(1) == [0]
        assert phi_permutation(2) == [0, 1]
        assert phi_permutation(4) == [0, 2, 1, 3]
        assert phi_permutation(8) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_one_based_view(self):
        assert phi_one_based(4) == [1, 3, 2, 4]

    def test_rejects_non_powers(self):
        with pytest.raises(ReproError):
            phi_permutation(6)
        with pytest.raises(ReproError):
            phi_sortedness_bound(12)

    @pytest.mark.parametrize("log_m", range(2, 13))
    def test_phi_is_permutation_with_low_sortedness(self, log_m):
        m = 2**log_m
        assert verify_phi(m)

    @pytest.mark.parametrize("log_m", range(2, 11))
    def test_remark20_bound_exact(self, log_m):
        m = 2**log_m
        assert sortedness(phi_permutation(m)) <= 2 * math.sqrt(m) - 1

    def test_phi_beats_random_permutations(self):
        # φ is near the Erdős–Szekeres floor; random permutations average
        # around 2√m, so φ should never be *worse* than typical randoms by
        # a large factor.
        m = 1024
        rng = random.Random(7)
        phi_s = sortedness(phi_permutation(m))
        randoms = []
        for _ in range(10):
            p = list(range(m))
            rng.shuffle(p)
            randoms.append(sortedness(p))
        assert phi_s <= max(randoms)
        assert phi_s <= 2 * math.sqrt(m) - 1

    def test_self_inverse(self):
        # bit-reversal is an involution, so φ sorted by reversed bits is
        # its own inverse as a permutation
        from repro._util import inverse_permutation

        for m in (4, 8, 16, 64):
            phi = phi_permutation(m)
            assert inverse_permutation(phi) == phi
