"""Unit and property tests for the external-memory runtime (repro.extmem)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    ReproError,
    ReversalBudgetExceeded,
    SpaceBudgetExceeded,
    TapeBudgetExceeded,
)
from repro.extmem import (
    BLANK,
    InternalMemory,
    RecordTape,
    ResourceBudget,
    ResourceTracker,
    SymbolTape,
)
from repro.extmem.memory import bit_cost
from repro.extmem.record_tape import fresh_tapes
from tests.settings_profiles import STANDARD_SETTINGS

#: A random charge script: tapes, reversals, allocations, full frees.
CHARGE_OPS = st.lists(
    st.one_of(
        st.just(("tape",)),
        st.just(("rev",)),
        st.integers(min_value=1, max_value=16).map(lambda b: ("alloc", b)),
        st.just(("free",)),
    ),
    max_size=40,
)


def _replay(tracker, script):
    """Run a charge script on ``tracker`` (no enforcement expected to fire)."""
    tape_ids = []
    allocated = 0
    for op in script:
        if op[0] == "tape":
            tape_ids.append(tracker.register_tape())
        elif op[0] == "rev":
            if tape_ids:
                tracker.charge_reversal(tape_ids[-1])
        elif op[0] == "alloc":
            tracker.charge_internal(op[1])
            allocated += op[1]
        elif op[0] == "free" and allocated:
            tracker.charge_internal(-allocated)
            allocated = 0


class TestTracker:
    def test_scans_is_one_plus_reversals(self):
        tr = ResourceTracker()
        tid = tr.register_tape()
        assert tr.scans == 1
        tr.charge_reversal(tid)
        tr.charge_reversal(tid)
        assert tr.reversals == 2
        assert tr.scans == 3

    def test_unknown_tape_rejected(self):
        tr = ResourceTracker()
        with pytest.raises(ValueError):
            tr.charge_reversal(99)

    def test_scan_budget_enforced(self):
        tr = ResourceTracker(ResourceBudget(max_scans=2))
        tid = tr.register_tape()
        tr.charge_reversal(tid)  # scans = 2, ok
        with pytest.raises(ReversalBudgetExceeded):
            tr.charge_reversal(tid)

    def test_space_budget_enforced(self):
        tr = ResourceTracker(ResourceBudget(max_internal_bits=10))
        tr.charge_internal(10)
        with pytest.raises(SpaceBudgetExceeded):
            tr.charge_internal(1)

    def test_space_peak_not_current(self):
        tr = ResourceTracker()
        tr.charge_internal(10)
        tr.charge_internal(-10)
        tr.charge_internal(5)
        assert tr.peak_internal_bits == 10
        assert tr.current_internal_bits == 5

    def test_negative_space_rejected(self):
        tr = ResourceTracker()
        with pytest.raises(ValueError):
            tr.charge_internal(-1)

    def test_tape_budget_enforced(self):
        tr = ResourceTracker(ResourceBudget(max_tapes=1))
        tr.register_tape()
        with pytest.raises(TapeBudgetExceeded):
            tr.register_tape()

    def test_report_snapshot(self):
        tr = ResourceTracker()
        tid = tr.register_tape()
        tr.charge_reversal(tid)
        tr.charge_internal(7)
        tr.charge_step(3)
        rep = tr.report()
        assert rep.reversals == 1
        assert rep.scans == 2
        assert rep.peak_internal_bits == 7
        assert rep.tapes_used == 1
        assert rep.steps == 3
        assert rep.reversals_per_tape == {tid: 1}

    def test_report_within(self):
        tr = ResourceTracker()
        tid = tr.register_tape()
        tr.charge_reversal(tid)
        rep = tr.report()
        assert rep.within(ResourceBudget(max_scans=2))
        assert not rep.within(ResourceBudget(max_scans=1))
        assert rep.within(ResourceBudget())

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(max_scans=-1)


class TestTrackerAtomicity:
    """A caught *BudgetExceeded leaves the tracker exactly as before the
    offending charge — bit-identical to a budget-free twin that performed
    the same successful charges (the check-then-commit contract)."""

    def test_reversal_denial_leaves_state_unchanged(self):
        enforced = ResourceTracker(ResourceBudget(max_scans=3))
        twin = ResourceTracker()
        tid_e = enforced.register_tape()
        tid_t = twin.register_tape()
        for _ in range(2):  # scans -> 3, exactly at budget
            enforced.charge_reversal(tid_e)
            twin.charge_reversal(tid_t)
        with pytest.raises(ReversalBudgetExceeded):
            enforced.charge_reversal(tid_e)
        assert enforced.report() == twin.report()
        assert enforced.scans == 3  # not overstated by the denied charge
        assert enforced.report().within(ResourceBudget(max_scans=3))

    def test_space_denial_leaves_state_unchanged(self):
        enforced = ResourceTracker(ResourceBudget(max_internal_bits=10))
        twin = ResourceTracker()
        for tr in (enforced, twin):
            tr.charge_internal(7)
            tr.charge_internal(-2)
        with pytest.raises(SpaceBudgetExceeded):
            enforced.charge_internal(6)  # 5 + 6 = 11 > 10
        assert enforced.report() == twin.report()
        assert enforced.current_internal_bits == 5
        assert enforced.peak_internal_bits == 7

    def test_negative_space_denial_leaves_state_unchanged(self):
        tr = ResourceTracker()
        tr.charge_internal(3)
        with pytest.raises(ValueError):
            tr.charge_internal(-4)
        assert tr.current_internal_bits == 3
        assert tr.peak_internal_bits == 3

    def test_tape_denial_leaves_state_unchanged(self):
        enforced = ResourceTracker(ResourceBudget(max_tapes=1))
        twin = ResourceTracker()
        enforced.register_tape()
        twin.register_tape()
        with pytest.raises(TapeBudgetExceeded):
            enforced.register_tape()
        assert enforced.report() == twin.report()
        assert enforced.tapes_used == 1
        # the denied registration must not leave a phantom reversal slot
        with pytest.raises(ValueError):
            enforced.charge_reversal(2)

    def test_denied_charge_can_be_retried_after_budget_lift(self):
        tr = ResourceTracker(ResourceBudget(max_internal_bits=4))
        tr.charge_internal(4)
        with pytest.raises(SpaceBudgetExceeded):
            tr.charge_internal(1)
        tr.charge_internal(-4)  # free, then the same charge fits
        tr.charge_internal(4)
        assert tr.peak_internal_bits == 4

    @STANDARD_SETTINGS
    @given(
        CHARGE_OPS,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=4),
    )
    def test_enforced_tracker_always_matches_budget_free_twin(
        self, script, max_scans, max_bits, max_tapes
    ):
        """Replay a random charge script under enforcement: at every step
        the enforced tracker's state equals the twin that only performed
        the successful charges."""
        budget = ResourceBudget(
            max_scans=max_scans,
            max_internal_bits=max_bits,
            max_tapes=max_tapes,
        )
        enforced = ResourceTracker(budget)
        twin = ResourceTracker()
        tape_ids = []
        allocated = 0
        for op in script:
            try:
                if op[0] == "tape":
                    enforced.register_tape()
                    twin.register_tape()
                    tape_ids.append(len(tape_ids) + 1)
                elif op[0] == "rev":
                    if not tape_ids:
                        continue
                    enforced.charge_reversal(tape_ids[-1])
                    twin.charge_reversal(tape_ids[-1])
                elif op[0] == "alloc":
                    enforced.charge_internal(op[1])
                    twin.charge_internal(op[1])
                    allocated += op[1]
                elif op[0] == "free" and allocated:
                    enforced.charge_internal(-allocated)
                    twin.charge_internal(-allocated)
                    allocated = 0
            except (
                ReversalBudgetExceeded,
                SpaceBudgetExceeded,
                TapeBudgetExceeded,
            ):
                pass  # denied: the twin never attempted this charge
            assert enforced.report() == twin.report()
            assert enforced.report().within(budget)

    @STANDARD_SETTINGS
    @given(
        st.lists(
            st.one_of(
                st.just(("tape",)),
                st.tuples(
                    st.just("batch"),
                    st.integers(min_value=0, max_value=3),  # reversals
                    st.integers(min_value=0, max_value=8),  # internal bits
                    st.integers(min_value=0, max_value=9),  # steps
                ),
                st.integers(min_value=1, max_value=16).map(
                    lambda b: ("alloc", b)
                ),
                st.just(("free",)),
            ),
            max_size=40,
        ),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=24),
    )
    def test_batched_charges_match_budget_free_twin(
        self, script, max_scans, max_bits
    ):
        """The compiled engine's macro sweeps charge via ``charge_batch``;
        its check-then-commit must extend across the whole batch: a caught
        denial leaves the enforced tracker bit-identical to the twin that
        only performed the successful (batched and per-step) charges."""
        budget = ResourceBudget(
            max_scans=max_scans, max_internal_bits=max_bits
        )
        enforced = ResourceTracker(budget)
        twin = ResourceTracker()
        tape_ids = []
        allocated = 0
        for op in script:
            try:
                if op[0] == "tape":
                    enforced.register_tape()
                    twin.register_tape()
                    tape_ids.append(len(tape_ids) + 1)
                elif op[0] == "batch":
                    _, revs, bits, steps = op
                    if revs and not tape_ids:
                        continue
                    kwargs = dict(
                        reversals=revs, internal_delta=bits, steps=steps
                    )
                    if revs:
                        kwargs["tape_id"] = tape_ids[-1]
                    enforced.charge_batch(**kwargs)
                    twin.charge_batch(**kwargs)
                    allocated += bits
                elif op[0] == "alloc":
                    enforced.charge_internal(op[1])
                    twin.charge_internal(op[1])
                    allocated += op[1]
                elif op[0] == "free" and allocated:
                    enforced.charge_internal(-allocated)
                    twin.charge_internal(-allocated)
                    allocated = 0
            except (ReversalBudgetExceeded, SpaceBudgetExceeded):
                pass  # denied batch: no component committed, twin untouched
            assert enforced.report() == twin.report()
            assert enforced.report().within(budget)

    def test_batch_denial_commits_nothing_across_components(self):
        # reversal fits but internal does not: the already-validated
        # reversal must not have been committed when the batch raises
        tr = ResourceTracker(ResourceBudget(max_scans=10, max_internal_bits=4))
        tid = tr.register_tape()
        with pytest.raises(SpaceBudgetExceeded):
            tr.charge_batch(
                tape_id=tid, reversals=2, internal_delta=5, steps=7
            )
        assert tr.reversals == 0
        assert tr.peak_internal_bits == 0
        assert tr.steps == 0

    def test_batch_validates_reversals_before_internal(self):
        # stream order: the reversal denial must win when both would deny
        tr = ResourceTracker(ResourceBudget(max_scans=1, max_internal_bits=1))
        tid = tr.register_tape()
        with pytest.raises(ReversalBudgetExceeded):
            tr.charge_batch(tape_id=tid, reversals=1, internal_delta=5)

    def test_batch_requires_known_tape_for_reversals(self):
        tr = ResourceTracker()
        with pytest.raises(ValueError):
            tr.charge_batch(tape_id=None, reversals=1)
        with pytest.raises(ValueError):
            tr.charge_batch(tape_id=7, reversals=1)

    def test_batch_equals_per_step_charges(self):
        batched = ResourceTracker()
        stepped = ResourceTracker()
        b_tid = batched.register_tape("t")
        s_tid = stepped.register_tape("t")
        batched.charge_batch(
            tape_id=b_tid, reversals=2, internal_delta=3, steps=5
        )
        for _ in range(2):
            stepped.charge_reversal(s_tid)
        stepped.charge_internal(3)
        stepped.charge_step(5)
        assert batched.report() == stepped.report()

    @STANDARD_SETTINGS
    @given(
        CHARGE_OPS,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=4),
    )
    def test_within_agrees_with_live_enforcement(
        self, script, max_scans, max_bits, max_tapes
    ):
        """``ResourceReport.within(budget)`` ⟺ the same run completes under
        an enforcing tracker: a run that finishes under enforcement yields
        a report that is ``within``, and a budget-free run whose report is
        ``within`` replays under enforcement without a denial."""
        budget = ResourceBudget(
            max_scans=max_scans,
            max_internal_bits=max_bits,
            max_tapes=max_tapes,
        )
        free = ResourceTracker()
        _replay(free, script)
        report = free.report()

        enforced = ResourceTracker(budget)
        try:
            _replay(enforced, script)
            completed = True
        except (
            ReversalBudgetExceeded,
            SpaceBudgetExceeded,
            TapeBudgetExceeded,
        ):
            completed = False
        assert completed == report.within(budget)
        if completed:
            assert enforced.report() == report


class TestInternalMemory:
    def test_bit_cost_int(self):
        assert bit_cost(0) == 1
        assert bit_cost(1) == 1
        assert bit_cost(255) == 8
        assert bit_cost(True) == 1

    def test_bit_cost_str_and_tuple(self):
        assert bit_cost("ab") == 16
        assert bit_cost((3, "a")) == 2 + 8
        assert bit_cost(None) == 0

    def test_bit_cost_rejects_unknown(self):
        with pytest.raises(ReproError):
            bit_cost(object())

    def test_store_load_free(self):
        mem = InternalMemory()
        mem["x"] = 255
        assert mem["x"] == 255
        assert mem.used_bits == 8
        mem["x"] = 1  # re-store frees the old charge
        assert mem.used_bits == 1
        mem.free("x")
        assert mem.used_bits == 0
        assert mem.peak_bits == 8

    def test_missing_register(self):
        mem = InternalMemory()
        with pytest.raises(ReproError):
            mem.load("nope")
        with pytest.raises(KeyError):
            del mem["nope"]

    def test_dict_protocol(self):
        mem = InternalMemory()
        mem["a"] = 1
        mem["b"] = 2
        assert "a" in mem and "c" not in mem
        assert sorted(mem) == ["a", "b"]
        assert len(mem) == 2
        del mem["a"]
        assert len(mem) == 1

    def test_clear(self):
        mem = InternalMemory()
        mem["a"], mem["b"] = 10, 20
        mem.clear()
        assert len(mem) == 0 and mem.used_bits == 0

    def test_budget_enforced_through_memory(self):
        tr = ResourceTracker(ResourceBudget(max_internal_bits=8))
        mem = InternalMemory(tr)
        mem["x"] = 255  # 8 bits, exactly at budget
        with pytest.raises(SpaceBudgetExceeded):
            mem["y"] = 1

    def test_failed_store_keeps_memory_and_tracker_consistent(self):
        tr = ResourceTracker(ResourceBudget(max_internal_bits=8))
        mem = InternalMemory(tr)
        mem["x"] = 255
        with pytest.raises(SpaceBudgetExceeded):
            mem["y"] = 1
        # the failed store must be invisible in *both* views
        assert "y" not in mem
        assert mem.used_bits == 8
        assert tr.current_internal_bits == 8
        assert mem.used_bits == tr.current_internal_bits

    def test_failed_restore_keeps_old_value_and_charge(self):
        tr = ResourceTracker(ResourceBudget(max_internal_bits=8))
        mem = InternalMemory(tr)
        mem["x"] = 3  # 2 bits
        with pytest.raises(SpaceBudgetExceeded):
            mem["x"] = 2**10  # would need 11 bits total
        assert mem["x"] == 3
        assert mem.used_bits == 2
        assert tr.current_internal_bits == 2


class TestSymbolTape:
    def test_initial_state(self):
        t = SymbolTape("abc")
        assert t.head == 0
        assert t.direction == +1
        assert t.read() == "a"
        assert len(t) == 3

    def test_read_past_end_is_blank(self):
        t = SymbolTape("")
        assert t.read() == BLANK

    def test_write_extends(self):
        t = SymbolTape()
        t.write("x")
        t.move(+1)
        t.move(+1)
        t.write("y")
        assert t.contents() == "x" + BLANK + "y"

    def test_reversal_counting(self):
        t = SymbolTape("abcd")
        t.move(+1)
        t.move(+1)
        assert t.reversals == 0
        t.move(-1)
        assert t.reversals == 1
        t.move(+1)
        assert t.reversals == 2

    def test_left_wall(self):
        t = SymbolTape("ab")
        t.move(-1)  # flips direction (1 reversal) but stays at 0
        assert t.head == 0
        assert t.reversals == 1

    def test_move_validation(self):
        t = SymbolTape("a")
        with pytest.raises(ReproError):
            t.move(0)

    def test_seek_start_costs_at_most_one_reversal(self):
        t = SymbolTape("abcdef")
        for _ in range(5):
            t.move(+1)
        t.seek_start()
        assert t.head == 0
        assert t.reversals == 1

    def test_scan_right(self):
        t = SymbolTape("abc")
        assert "".join(t.scan_right()) == "abc"
        assert t.head == 3

    def test_space_used_tracks_touched_cells(self):
        t = SymbolTape()
        assert t.space_used == 0
        t.write("a")
        t.move(+1)
        assert t.space_used == 2


class TestRecordTape:
    def test_read_write_step(self):
        t = RecordTape()
        t.step_write("v1")
        t.step_write("v2")
        assert t.snapshot() == ["v1", "v2"]
        t.rewind()
        assert t.step_read() == "v1"
        assert t.step_read() == "v2"
        assert t.read() is None

    def test_cannot_write_none(self):
        t = RecordTape()
        with pytest.raises(ReproError):
            t.write(None)

    def test_rewind_cost(self):
        tr = ResourceTracker()
        t = RecordTape(["a", "b", "c"], tracker=tr)
        list(t.scan())  # forward scan, no reversal
        assert tr.reversals == 0
        t.rewind()  # walk left (1) then face right (1)
        assert tr.reversals == 2
        list(t.scan())
        assert tr.reversals == 2

    def test_rewind_at_start_facing_right_is_free(self):
        tr = ResourceTracker()
        t = RecordTape(["a"], tracker=tr)
        t.rewind()
        assert tr.reversals == 0

    def test_scan_backward(self):
        t = RecordTape(["a", "b", "c"])
        t.seek_end()
        t.move(-1)  # onto "c"
        assert list(t.scan_backward()) == ["c", "b", "a"]

    def test_write_all(self):
        t = RecordTape()
        t.write_all(["x", "y"])
        assert t.snapshot() == ["x", "y"]
        assert t.at_end

    def test_shared_tracker_over_multiple_tapes(self):
        tr = ResourceTracker()
        a, b = fresh_tapes(2, tr)
        a.write_all([1, 2])
        b.write_all([3])
        a.rewind()
        b.rewind()
        rep = tr.report()
        assert rep.tapes_used == 2
        assert rep.reversals == 4  # two rewinds, two reversals each

    def test_left_wall(self):
        t = RecordTape(["a"])
        t.move(-1)
        assert t.head == 0

    def test_left_wall_bounce_charges_once_then_raises(self):
        tr = ResourceTracker()
        t = RecordTape(["a"], tracker=tr)
        t.move(-1)  # the bounce: direction flip charged, head stays
        assert t.head == 0 and t.direction == -1
        assert tr.reversals == 1
        with pytest.raises(ReproError):
            t.move(-1)  # a second left move at the wall would spin forever
        assert tr.reversals == 1  # and it charges nothing
        t.move(+1)  # recovering with a right move works (one reversal)
        assert t.head == 1 and tr.reversals == 2

    def test_seek_scan_rewind_accounting_unchanged_by_bounce_guard(self):
        # the exact accounting the seed pinned for the derived operations
        tr = ResourceTracker()
        t = RecordTape(["a", "b", "c"], tracker=tr)
        t.seek_end()
        assert tr.reversals == 0
        t.seek_start()
        assert tr.reversals == 1
        t.rewind()  # at start facing left: just the flip back to +1
        assert tr.reversals == 2
        t.seek_end()
        t.move(-1)  # onto "c"
        assert list(t.scan_backward()) == ["c", "b", "a"]
        assert tr.reversals == 3  # one reversal for the whole backward scan
        t.rewind()
        assert tr.reversals == 4  # only the flip: head already at cell 0

    def test_move_validation(self):
        t = RecordTape()
        with pytest.raises(ReproError):
            t.move(2)

    @given(st.lists(st.text(alphabet="01", min_size=1), max_size=30))
    def test_roundtrip_any_records(self, records):
        t = RecordTape()
        t.write_all(records)
        t.rewind()
        assert list(t.scan()) == records

    @given(st.lists(st.integers(), min_size=1, max_size=20))
    def test_forward_scan_never_reverses(self, records):
        tr = ResourceTracker()
        t = RecordTape(records, tracker=tr)
        list(t.scan())
        assert tr.reversals == 0
        assert tr.scans == 1
