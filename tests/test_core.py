"""Tests for repro.core: growth rates, classes, theorem registry."""

from fractions import Fraction

import pytest

from repro.core import (
    REGISTRY,
    CoRST,
    Containment,
    GrowthRate,
    LasVegasRST,
    NST,
    RST,
    ST,
    lemma3_bound,
    verify,
    verify_all,
)
from repro.core.bounds import theorem6_regime
from repro.errors import ReproError


class TestGrowthRate:
    def test_constructors(self):
        assert str(GrowthRate.const()) == "1"
        assert str(GrowthRate.log()) == "log N"
        assert str(GrowthRate.linear()) == "N"
        assert str(GrowthRate.power(1, 4)) == "N^1/4"
        assert str(GrowthRate.make(Fraction(1, 4), -1)) == "N^1/4·(log N)^-1"

    def test_algebra(self):
        quarter = GrowthRate.power(1, 4)
        log = GrowthRate.log()
        assert quarter / log == GrowthRate.make(Fraction(1, 4), -1)
        assert log * log == GrowthRate.polylog(2)

    def test_little_o(self):
        assert GrowthRate.const().is_little_o_of(GrowthRate.log())
        assert GrowthRate.log().is_little_o_of(GrowthRate.power(1, 4))
        assert GrowthRate.polylog(100).is_little_o_of(GrowthRate.power(1, 100))
        assert not GrowthRate.log().is_little_o_of(GrowthRate.log())

    def test_big_o_reflexive(self):
        assert GrowthRate.log().is_big_o_of(GrowthRate.log())
        assert not GrowthRate.linear().is_big_o_of(GrowthRate.log())

    def test_omega(self):
        assert GrowthRate.linear().is_omega_of(GrowthRate.log())

    def test_evaluate(self):
        assert GrowthRate.linear().evaluate(1024) == 1024.0
        assert GrowthRate.log().evaluate(1024) == 10.0
        with pytest.raises(ReproError):
            GrowthRate.log().evaluate(1)

    def test_theorem6_regime(self):
        const, log = GrowthRate.const(), GrowthRate.log()
        assert theorem6_regime(const, log)
        assert theorem6_regime(
            GrowthRate.polylog(Fraction(1, 2)),
            GrowthRate.make(Fraction(1, 4), -1),
        )
        # r = log N is NOT o(log N): the regime ends exactly there
        assert not theorem6_regime(log, const)
        # s too large: s·r reaches N^{1/4}
        assert not theorem6_regime(const, GrowthRate.power(1, 4))

    def test_lemma3_bound(self):
        assert lemma3_bound(10, 1, 1, 2) == 10 * 2**6
        with pytest.raises(ReproError):
            lemma3_bound(-1, 1, 1, 2)


class TestComplexityClasses:
    def test_str(self):
        c = RST(GrowthRate.log(), GrowthRate.const(), 2)
        assert str(c) == "RST(O(log N), O(1), 2)"

    def test_theorem6_exclusions(self):
        const, log = GrowthRate.const(), GrowthRate.log()
        sublog = GrowthRate.polylog(Fraction(1, 2))
        for problem in ("SET-EQUALITY", "MULTISET-EQUALITY", "CHECK-SORT"):
            assert RST(const, log).contains(problem) == Containment.NO
            assert ST(sublog, log).contains(problem) == Containment.NO

    def test_corollary7_inclusions(self):
        const, log = GrowthRate.const(), GrowthRate.log()
        for problem in ("SET-EQUALITY", "MULTISET-EQUALITY", "CHECK-SORT"):
            assert ST(log, const, 2).contains(problem) == Containment.YES
            # and upward: RST/NST with the same resources contain them too
            assert RST(log, const, 2).contains(problem) == Containment.YES
            assert NST(log, const, 2).contains(problem) == Containment.YES

    def test_theorem8a_inclusion(self):
        const, log = GrowthRate.const(), GrowthRate.log()
        assert CoRST(const, log, 1).contains("MULTISET-EQUALITY") == Containment.YES
        # RST (no false positives) does NOT get the fingerprint witness
        assert RST(const, log, 1).contains("MULTISET-EQUALITY") == Containment.NO

    def test_theorem8b_inclusion(self):
        const, log = GrowthRate.const(), GrowthRate.log()
        for problem in ("SET-EQUALITY", "MULTISET-EQUALITY", "CHECK-SORT"):
            assert NST(const, log, 2).contains(problem) == Containment.YES

    def test_short_variants(self):
        log = GrowthRate.log()
        assert ST(log, log, 3).contains("SHORT-CHECK-SORT") == Containment.YES
        assert (
            RST(GrowthRate.const(), log).contains("SHORT-SET-EQUALITY")
            == Containment.NO
        )

    def test_open_problems_stay_open(self):
        const, log = GrowthRate.const(), GrowthRate.log()
        assert ST(const, log).contains("DISJOINT-SETS") == Containment.OPEN
        # set equality in co-RST with 2 scans: not resolved by the paper
        assert CoRST(const, log, 1).contains("SET-EQUALITY") == Containment.OPEN

    def test_tape_counts_matter(self):
        const, log = GrowthRate.const(), GrowthRate.log()
        assert NST(const, log, 1).contains("CHECK-SORT") == Containment.OPEN
        assert NST(const, log, 2).contains("CHECK-SORT") == Containment.YES

    def test_unknown_problem(self):
        with pytest.raises(ReproError):
            ST(GrowthRate.log(), GrowthRate.const()).contains("HALTING")


class TestTheoremRegistry:
    def test_registry_covers_the_headline_results(self):
        expected = {
            "lemma-3",
            "theorem-6",
            "corollary-7",
            "corollary-7-short",
            "theorem-8a",
            "theorem-8b",
            "corollary-9",
            "corollary-10",
            "theorem-11",
            "theorem-12",
            "theorem-13",
            "lemma-16",
            "remark-20",
        }
        assert expected <= set(REGISTRY)

    def test_unknown_result(self):
        with pytest.raises(ReproError):
            verify("theorem-999")

    @pytest.mark.parametrize("result_id", sorted(REGISTRY))
    def test_each_check_passes(self, result_id):
        check = verify(result_id)
        assert check.passed, f"{result_id}: {check.measured}"

    def test_verify_all(self):
        checks = verify_all()
        assert len(checks) == len(REGISTRY)
        assert all(c.passed for c in checks)
