"""Round-trip fuzzing of the XML substrate with random document trees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.queries.xml import (
    Document,
    Element,
    TextNode,
    parse,
    serialize,
)
from repro.queries.xml.tokens import tokenize, well_formed

names = st.sampled_from(["a", "b", "item", "set1", "string", "x_1"])
texts = st.text(alphabet="01ab", min_size=1, max_size=6)


def _tree_strategy():
    leaf = st.one_of(
        names.map(lambda n: Element(n)),
        texts.map(TextNode),
    )

    def extend(children):
        return st.tuples(names, st.lists(children, max_size=4)).map(
            lambda t: Element(t[0], list(t[1]))
        )

    return st.recursive(leaf, extend, max_leaves=12)


def _normalize(node):
    """Adjacent text nodes merge on reparse; normalize for comparison."""
    if isinstance(node, TextNode):
        return ("text", node.value)
    merged = []
    for child in node.children:
        norm = _normalize(child)
        if (
            norm[0] == "text"
            and merged
            and merged[-1][0] == "text"
        ):
            merged[-1] = ("text", merged[-1][1] + norm[1])
        else:
            merged.append(norm)
    return ("elem", node.name, tuple(merged))


class TestXMLFuzz:
    @given(_tree_strategy().filter(lambda n: isinstance(n, Element)))
    @settings(max_examples=80, deadline=None)
    def test_serialize_parse_roundtrip(self, root):
        source = serialize(root)
        reparsed = parse(source)
        assert _normalize(reparsed.root) == _normalize(root)

    @given(_tree_strategy().filter(lambda n: isinstance(n, Element)))
    @settings(max_examples=60, deadline=None)
    def test_token_stream_well_formed(self, root):
        tokens = list(tokenize(serialize(root)))
        assert well_formed(tokens)

    @given(_tree_strategy().filter(lambda n: isinstance(n, Element)))
    @settings(max_examples=60, deadline=None)
    def test_string_value_is_text_concatenation(self, root):
        def collect(node):
            if isinstance(node, TextNode):
                return node.value
            return "".join(collect(c) for c in node.children)

        assert root.string_value() == collect(root)

    @given(_tree_strategy().filter(lambda n: isinstance(n, Element)))
    @settings(max_examples=40, deadline=None)
    def test_parent_pointers_consistent(self, root):
        doc = parse(serialize(root))
        for node in doc.all_nodes():
            for child in getattr(node, "children", []):
                assert child.parent is node
