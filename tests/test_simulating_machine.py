"""Tests for the executable Lemma 16 simulating machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MachineError
from repro.listmachine.bounds import lemma30_list_length_bound
from repro.listmachine.simulating_machine import (
    SimulatingListMachine,
    verify_cell_contents,
    verify_cells_partition,
)
from repro.machines import (
    coin_flip_machine,
    copy_machine,
    copy_reverse_machine,
    equality_machine,
    run_deterministic,
)

bits = st.text(alphabet="01", max_size=8)


class TestSimulatingListMachine:
    def test_rejects_nondeterministic(self):
        with pytest.raises(MachineError):
            SimulatingListMachine(coin_flip_machine())

    @given(bits, bits)
    @settings(max_examples=50, deadline=None)
    def test_acceptance_preserved(self, w1, w2):
        machine = equality_machine()
        word = f"{w1}#{w2}"
        result = SimulatingListMachine(machine).run(word)
        assert result.accepted == run_deterministic(machine, word).accepts(
            machine
        )

    @given(bits, bits)
    @settings(max_examples=40, deadline=None)
    def test_structural_invariants(self, w1, w2):
        machine = equality_machine()
        word = f"{w1}#{w2}"
        result = SimulatingListMachine(machine).run(word)
        assert verify_cells_partition(result)
        assert verify_cell_contents(result, machine, word)

    @given(bits, bits)
    @settings(max_examples=40, deadline=None)
    def test_reversals_match_tm(self, w1, w2):
        machine = equality_machine()
        word = f"{w1}#{w2}"
        result = SimulatingListMachine(machine).run(word)
        ref = run_deterministic(machine, word)
        assert sum(result.reversals_per_list) == sum(
            ref.statistics.reversals_per_tape[: machine.external_tapes]
        )

    @given(bits, bits)
    @settings(max_examples=40, deadline=None)
    def test_lemma30_list_length(self, w1, w2):
        machine = equality_machine()
        word = f"{w1}#{w2}"
        result = SimulatingListMachine(machine).run(word)
        r = 1 + sum(result.reversals_per_list)
        m = max(1, word.count("#") + 1) + (machine.external_tapes - 1)
        assert result.max_total_list_length() <= lemma30_list_length_bound(
            machine.external_tapes, r, m
        )

    def test_step_compression(self):
        """NLM steps are input-size independent for the equality machine."""
        machine = equality_machine()
        small = SimulatingListMachine(machine).run("01#01")
        large = SimulatingListMachine(machine).run("01010101#01010101")
        assert small.list_machine_steps == large.list_machine_steps
        assert large.tm_run_length > small.tm_run_length

    def test_reversal_free_machines_take_one_step(self):
        for machine, word in ((copy_machine(), "0101"),):
            result = SimulatingListMachine(machine).run(word)
            assert result.list_machine_steps == 1
            assert result.steps[0].kind == "halt"

    def test_single_reversal_machine(self):
        machine = copy_reverse_machine()
        result = SimulatingListMachine(machine).run("0110")
        kinds = [s.kind for s in result.steps]
        assert kinds.count("turn") == 1
        assert verify_cells_partition(result)
        assert verify_cell_contents(result, machine, "0110")

    def test_matches_block_trace_step_count(self):
        from repro.listmachine.simulate_tm import block_trace

        machine = equality_machine()
        for word in ("01#01", "0110#0111", "#"):
            sim = SimulatingListMachine(machine).run(word)
            trace = block_trace(machine, word)
            # both decompose the same run at the same events
            assert sim.list_machine_steps == trace.list_machine_steps