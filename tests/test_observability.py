"""Tests for repro.observability: events, sinks, profiles, contract audit."""

import io
import json
import random

import pytest

from repro.errors import SpaceBudgetExceeded
from repro.extmem import (
    InternalMemory,
    RecordTape,
    ResourceBudget,
    ResourceTracker,
)
from repro.observability import (
    KIND_DENIED,
    KIND_PHASE,
    KIND_REVERSAL,
    KIND_TAPE,
    JsonlFileSink,
    NullSink,
    RingBufferSink,
    RunProfile,
    replay_jsonl,
)
from repro.observability.audit import (
    CONTRACTS,
    run_contract_audit,
    write_audit_json,
)


def _tracked_run(sink):
    """A tiny scripted run: one tape, two phases, a few charges."""
    tracker = ResourceTracker()
    tracker.attach_sink(sink)
    tape = RecordTape(["a", "b"], tracker=tracker, name="input")
    tracker.mark_phase("forward")
    list(tape.scan())
    tracker.mark_phase("backward")
    tape.move(-1)
    tracker.charge_internal(5)
    tracker.charge_internal(-5)
    tracker.charge_step(3)
    return tracker


class TestEventStream:
    def test_sequence_numbers_are_monotone_and_dense(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        seqs = [e.seq for e in sink.events()]
        assert seqs == list(range(1, len(seqs) + 1))

    def test_events_carry_tape_attribution(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        (tape_event,) = [e for e in sink if e.kind == KIND_TAPE]
        assert tape_event.tape_id == 1
        assert tape_event.label == "input"
        (reversal,) = [e for e in sink if e.kind == KIND_REVERSAL]
        assert reversal.tape_name == "input"
        assert reversal.scans == 2

    def test_no_sink_means_no_events_and_identical_accounting(self):
        sink = RingBufferSink()
        observed = _tracked_run(sink)
        silent = _tracked_run(NullSink())
        assert observed.report() == silent.report()

    def test_detach_sink_stops_the_stream(self):
        sink = RingBufferSink()
        tracker = ResourceTracker()
        tracker.attach_sink(sink)
        tid = tracker.register_tape("t")
        tracker.detach_sink()
        tracker.charge_reversal(tid)
        assert len(sink) == 1  # only the registration was observed
        assert tracker.reversals == 1  # accounting continued regardless

    def test_denied_event_shows_prechange_totals(self):
        sink = RingBufferSink()
        tracker = ResourceTracker(ResourceBudget(max_internal_bits=4))
        tracker.attach_sink(sink)
        tracker.charge_internal(4)
        with pytest.raises(SpaceBudgetExceeded):
            tracker.charge_internal(2)
        denied = [e for e in sink if e.kind == KIND_DENIED]
        assert len(denied) == 1
        assert denied[0].current_internal_bits == 4  # unchanged by denial
        assert denied[0].delta == 2


class TestSinks:
    def test_ring_buffer_caps_and_counts_drops(self):
        sink = RingBufferSink(capacity=3)
        tracker = ResourceTracker()
        tracker.attach_sink(sink)
        for _ in range(5):
            tracker.charge_step()
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [e.seq for e in sink.events()] == [3, 4, 5]
        assert sink.events()[-1].steps == 5  # suffix totals stay exact

    def test_ring_buffer_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_roundtrip(self):
        stream = io.StringIO()
        with JsonlFileSink(stream) as sink:
            _tracked_run(sink)
        lines = stream.getvalue().splitlines()
        assert len(lines) == sink.emitted
        events = list(replay_jsonl(lines))
        assert events[0].kind == KIND_TAPE
        assert events[0].tape_name == "input"
        kinds = {e.kind for e in events}
        assert KIND_PHASE in kinds and KIND_REVERSAL in kinds
        # every line is valid standalone JSON
        for line in lines:
            json.loads(line)

    def test_jsonl_file_sink_writes_to_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlFileSink(str(path)) as sink:
            _tracked_run(sink)
        events = list(replay_jsonl(path.read_text().splitlines()))
        assert events and events[-1].seq == len(events)


class TestRunProfile:
    def test_phases_slice_the_run(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        profile = RunProfile.from_events(sink.events())
        assert profile.phase_names() == ["(setup)", "forward", "backward"]
        assert profile.phase("forward").reversals == 0
        assert profile.phase("backward").reversals == 1
        assert profile.phase("backward").reversals_per_tape == {"input": 1}
        assert profile.phase("backward").steps == 3
        assert profile.final_scans == 2

    def test_space_timeline_and_internal_delta(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        profile = RunProfile.from_events(sink.events())
        backward = profile.phase("backward")
        assert backward.peak_internal_bits == 5
        assert backward.internal_delta == 0  # alloc then full free
        assert (profile.space_timeline[-2][1], profile.space_timeline[-1][1]) == (5, 0)

    def test_fingerprint_phases_match_the_paper_structure(self):
        from repro.algorithms.fingerprint import multiset_equality_fingerprint
        from repro.problems.encoding import Instance

        words = ("0110", "1010", "0001")
        inst = Instance(words, tuple(reversed(words)))
        sink = RingBufferSink()
        result = multiset_equality_fingerprint(
            inst, random.Random(0), sink=sink
        )
        assert result.accepted
        profile = RunProfile.from_events(sink.events())
        assert profile.phase_names() == ["(setup)", "scan1", "params", "scan2"]
        # all the run's reversal happens in scan2 (the single backward walk)
        assert profile.phase("scan1").reversals == 0
        assert profile.phase("scan2").reversals == 1
        assert profile.final_scans == result.report.scans == 2
        assert (
            profile.final_peak_internal_bits == result.report.peak_internal_bits
        )
        assert profile.denied_total == 0

    def test_summary_lines_render(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        lines = RunProfile.from_events(sink.events()).summary_lines()
        assert any("backward" in line for line in lines)

    def test_empty_stream(self):
        profile = RunProfile.from_events([])
        assert profile.phases == ()
        assert profile.final_scans == 1
        assert profile.denied_total == 0


class TestContractAudit:
    def test_quick_audit_all_within_envelopes(self):
        run = run_contract_audit(quick=True, sweep=[(4, 8), (16, 8)])
        assert run.ok
        assert len(run.contracts) == len(CONTRACTS)
        for contract in run.contracts:
            for check in contract.checks:
                assert check.within, (contract.name, check.m)
                assert check.event_stream_consistent, contract.name
                assert check.denied == 0

    def test_audit_detects_a_broken_envelope(self):
        # shrink one claim below reality: the harness must flag it
        from repro.observability.audit import ContractSpec

        def overtight(m, n, rng, sink):
            tracker = ResourceTracker()
            tracker.attach_sink(sink)
            tape = RecordTape(list(range(m)), tracker=tracker, name="t")
            tape.rewind()  # costs nothing at start... but then:
            tape.seek_end()
            tape.seek_start()  # one real reversal
            return tracker.report(), ResourceBudget(max_scans=1)

        spec = ContractSpec("overtight", "claims 1 scan, uses 2", overtight)
        run = run_contract_audit(contracts=[spec], sweep=[(4, 4)])
        assert not run.ok
        assert not run.contracts[0].checks[0].within

    def test_audit_json_artifact_shape(self, tmp_path):
        run = run_contract_audit(quick=True, sweep=[(4, 8)])
        path = tmp_path / "audit.json"
        write_audit_json(run, str(path))
        data = json.loads(path.read_text())
        assert data["ok"] is True
        assert {c["name"] for c in data["contracts"]} == {
            s.name for s in CONTRACTS
        }
        check = data["contracts"][0]["checks"][0]
        assert set(check["measured"]) == {
            "scans",
            "reversals",
            "peak_internal_bits",
            "tapes_used",
        }
        assert set(check["claimed"]) == {
            "max_scans",
            "max_internal_bits",
            "max_tapes",
        }

    def test_audit_is_deterministic(self):
        one = run_contract_audit(quick=True, sweep=[(4, 8)])
        two = run_contract_audit(quick=True, sweep=[(4, 8)])
        assert one.to_json_dict() == two.to_json_dict()


class TestCliAudit:
    def test_main_audit_quick(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "AUDIT_contracts.json"
        code = main(["audit", "--quick", "--output", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["mode"] == "quick"
        assert data["ok"] is True
        captured = capsys.readouterr().out
        assert "ALL WITHIN CLAIMED ENVELOPES" in captured


class TestMemoryEventConsistency:
    def test_memory_and_tracker_agree_under_observation(self):
        sink = RingBufferSink()
        tracker = ResourceTracker(ResourceBudget(max_internal_bits=16))
        tracker.attach_sink(sink)
        mem = InternalMemory(tracker)
        mem["a"] = 255  # 8 bits
        with pytest.raises(SpaceBudgetExceeded):
            mem["b"] = 2**15  # 16 more bits: denied
        mem["c"] = 7  # 3 bits: still fits
        assert mem.used_bits == tracker.current_internal_bits == 11
        profile = RunProfile.from_events(sink.events())
        assert profile.denied_total == 1
        assert profile.final_peak_internal_bits == tracker.peak_internal_bits
