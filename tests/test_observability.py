"""Tests for repro.observability: events, sinks, profiles, contract audit."""

import io
import json
import random

import pytest

from repro.errors import SpaceBudgetExceeded
from repro.extmem import (
    InternalMemory,
    RecordTape,
    ResourceBudget,
    ResourceTracker,
)
from repro.observability import (
    KIND_DENIED,
    KIND_PHASE,
    KIND_REVERSAL,
    KIND_TAPE,
    JsonlFileSink,
    NullSink,
    RingBufferSink,
    RunProfile,
    replay_jsonl,
)
from repro.observability.audit import (
    CONTRACTS,
    run_contract_audit,
    write_audit_json,
)


def _tracked_run(sink):
    """A tiny scripted run: one tape, two phases, a few charges."""
    tracker = ResourceTracker()
    tracker.attach_sink(sink)
    tape = RecordTape(["a", "b"], tracker=tracker, name="input")
    tracker.mark_phase("forward")
    list(tape.scan())
    tracker.mark_phase("backward")
    tape.move(-1)
    tracker.charge_internal(5)
    tracker.charge_internal(-5)
    tracker.charge_step(3)
    return tracker


class TestEventStream:
    def test_sequence_numbers_are_monotone_and_dense(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        seqs = [e.seq for e in sink.events()]
        assert seqs == list(range(1, len(seqs) + 1))

    def test_events_carry_tape_attribution(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        (tape_event,) = [e for e in sink if e.kind == KIND_TAPE]
        assert tape_event.tape_id == 1
        assert tape_event.label == "input"
        (reversal,) = [e for e in sink if e.kind == KIND_REVERSAL]
        assert reversal.tape_name == "input"
        assert reversal.scans == 2

    def test_no_sink_means_no_events_and_identical_accounting(self):
        sink = RingBufferSink()
        observed = _tracked_run(sink)
        silent = _tracked_run(NullSink())
        assert observed.report() == silent.report()

    def test_detach_sink_stops_the_stream(self):
        sink = RingBufferSink()
        tracker = ResourceTracker()
        tracker.attach_sink(sink)
        tid = tracker.register_tape("t")
        tracker.detach_sink()
        tracker.charge_reversal(tid)
        assert len(sink) == 1  # only the registration was observed
        assert tracker.reversals == 1  # accounting continued regardless

    def test_denied_event_shows_prechange_totals(self):
        sink = RingBufferSink()
        tracker = ResourceTracker(ResourceBudget(max_internal_bits=4))
        tracker.attach_sink(sink)
        tracker.charge_internal(4)
        with pytest.raises(SpaceBudgetExceeded):
            tracker.charge_internal(2)
        denied = [e for e in sink if e.kind == KIND_DENIED]
        assert len(denied) == 1
        assert denied[0].current_internal_bits == 4  # unchanged by denial
        assert denied[0].delta == 2


class TestSinks:
    def test_ring_buffer_caps_and_counts_drops(self):
        sink = RingBufferSink(capacity=3)
        tracker = ResourceTracker()
        tracker.attach_sink(sink)
        for _ in range(5):
            tracker.charge_step()
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [e.seq for e in sink.events()] == [3, 4, 5]
        assert sink.events()[-1].steps == 5  # suffix totals stay exact

    def test_ring_buffer_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_roundtrip(self):
        stream = io.StringIO()
        with JsonlFileSink(stream) as sink:
            _tracked_run(sink)
        lines = stream.getvalue().splitlines()
        assert len(lines) == sink.emitted
        events = list(replay_jsonl(lines))
        assert events[0].kind == KIND_TAPE
        assert events[0].tape_name == "input"
        kinds = {e.kind for e in events}
        assert KIND_PHASE in kinds and KIND_REVERSAL in kinds
        # every line is valid standalone JSON
        for line in lines:
            json.loads(line)

    def test_jsonl_file_sink_writes_to_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlFileSink(str(path)) as sink:
            _tracked_run(sink)
        events = list(replay_jsonl(path.read_text().splitlines()))
        assert events and events[-1].seq == len(events)

    def test_replay_skips_span_and_ledger_lines_losslessly(self):
        """Satellite: one JSONL file can interleave all three schemas —
        tracker events, probe spans and sweep-ledger records — and the
        event layer replays exactly, with the split counted."""
        from repro.observability import MetricsRegistry
        from repro.observability.ledger import LedgerWriter

        stream = io.StringIO()
        with JsonlFileSink(stream) as sink:
            _tracked_run(sink)
        event_lines = stream.getvalue().splitlines()
        ledger_stream = io.StringIO()
        with LedgerWriter(ledger_stream) as ledger:
            ledger.sweep_start("mixed", tasks=1)
            ledger.record_outcome("mixed", index=0, ok=True)
            ledger.sweep_end("mixed")
        ledger_lines = ledger_stream.getvalue().splitlines()
        span_line = json.dumps({"kind": "span", "name": "x", "id": 1})
        # interleave: span, ledger record, then events, then the rest
        mixed = [span_line, ledger_lines[0]] + event_lines + ledger_lines[1:]

        registry = MetricsRegistry()
        replayed = list(replay_jsonl(mixed, registry=registry))
        reference = RingBufferSink()
        _tracked_run(reference)
        assert replayed == reference.events()

        snapshot = registry.snapshot()
        total = lambda name: sum(  # noqa: E731
            s["value"] for s in snapshot[name]["samples"]
        )
        assert total("replay_events_total") == len(replayed)
        assert total("replay_skipped_total") == 1 + len(ledger_lines)
        skipped_kinds = {
            s["labels"]["kind"]
            for s in snapshot["replay_skipped_total"]["samples"]
        }
        assert "span" in skipped_kinds
        assert "sweep-start" in skipped_kinds
        # a non-dict JSON line is skipped as "unknown", never a crash
        assert not list(replay_jsonl(["[1, 2, 3]"], registry=registry))
        assert registry.snapshot()["replay_skipped_total"]["samples"]


class TestRunProfile:
    def test_phases_slice_the_run(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        profile = RunProfile.from_events(sink.events())
        assert profile.phase_names() == ["(setup)", "forward", "backward"]
        assert profile.phase("forward").reversals == 0
        assert profile.phase("backward").reversals == 1
        assert profile.phase("backward").reversals_per_tape == {"input": 1}
        assert profile.phase("backward").steps == 3
        assert profile.final_scans == 2

    def test_space_timeline_and_internal_delta(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        profile = RunProfile.from_events(sink.events())
        backward = profile.phase("backward")
        assert backward.peak_internal_bits == 5
        assert backward.internal_delta == 0  # alloc then full free
        assert (profile.space_timeline[-2][1], profile.space_timeline[-1][1]) == (5, 0)

    def test_fingerprint_phases_match_the_paper_structure(self):
        from repro.algorithms.fingerprint import multiset_equality_fingerprint
        from repro.problems.encoding import Instance

        words = ("0110", "1010", "0001")
        inst = Instance(words, tuple(reversed(words)))
        sink = RingBufferSink()
        result = multiset_equality_fingerprint(
            inst, random.Random(0), sink=sink
        )
        assert result.accepted
        profile = RunProfile.from_events(sink.events())
        assert profile.phase_names() == ["(setup)", "scan1", "params", "scan2"]
        # all the run's reversal happens in scan2 (the single backward walk)
        assert profile.phase("scan1").reversals == 0
        assert profile.phase("scan2").reversals == 1
        assert profile.final_scans == result.report.scans == 2
        assert (
            profile.final_peak_internal_bits == result.report.peak_internal_bits
        )
        assert profile.denied_total == 0

    def test_summary_lines_render(self):
        sink = RingBufferSink()
        _tracked_run(sink)
        lines = RunProfile.from_events(sink.events()).summary_lines()
        assert any("backward" in line for line in lines)

    def test_empty_stream(self):
        profile = RunProfile.from_events([])
        assert profile.phases == ()
        assert profile.final_scans == 1
        assert profile.denied_total == 0


class TestContractAudit:
    def test_quick_audit_all_within_envelopes(self):
        run = run_contract_audit(quick=True, sweep=[(4, 8), (16, 8)])
        assert run.ok
        assert len(run.contracts) == len(CONTRACTS)
        for contract in run.contracts:
            for check in contract.checks:
                assert check.within, (contract.name, check.m)
                assert check.event_stream_consistent, contract.name
                assert check.denied == 0

    def test_audit_detects_a_broken_envelope(self):
        # shrink one claim below reality: the harness must flag it
        from repro.observability.audit import ContractSpec

        def overtight(m, n, rng, sink):
            tracker = ResourceTracker()
            tracker.attach_sink(sink)
            tape = RecordTape(list(range(m)), tracker=tracker, name="t")
            tape.rewind()  # costs nothing at start... but then:
            tape.seek_end()
            tape.seek_start()  # one real reversal
            return tracker.report(), ResourceBudget(max_scans=1)

        spec = ContractSpec("overtight", "claims 1 scan, uses 2", overtight)
        run = run_contract_audit(contracts=[spec], sweep=[(4, 4)])
        assert not run.ok
        assert not run.contracts[0].checks[0].within

    def test_audit_json_artifact_shape(self, tmp_path):
        run = run_contract_audit(quick=True, sweep=[(4, 8)])
        path = tmp_path / "audit.json"
        write_audit_json(run, str(path))
        data = json.loads(path.read_text())
        assert data["ok"] is True
        assert {c["name"] for c in data["contracts"]} == {
            s.name for s in CONTRACTS
        }
        check = data["contracts"][0]["checks"][0]
        assert set(check["measured"]) == {
            "scans",
            "reversals",
            "peak_internal_bits",
            "tapes_used",
        }
        assert set(check["claimed"]) == {
            "max_scans",
            "max_internal_bits",
            "max_tapes",
        }

    def test_audit_is_deterministic(self):
        one = run_contract_audit(quick=True, sweep=[(4, 8)])
        two = run_contract_audit(quick=True, sweep=[(4, 8)])
        assert one.to_json_dict() == two.to_json_dict()


class TestCliAudit:
    def test_main_audit_quick(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "AUDIT_contracts.json"
        code = main(["audit", "--quick", "--output", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["mode"] == "quick"
        assert data["ok"] is True
        captured = capsys.readouterr().out
        assert "ALL WITHIN CLAIMED ENVELOPES" in captured


class TestMemoryEventConsistency:
    def test_memory_and_tracker_agree_under_observation(self):
        sink = RingBufferSink()
        tracker = ResourceTracker(ResourceBudget(max_internal_bits=16))
        tracker.attach_sink(sink)
        mem = InternalMemory(tracker)
        mem["a"] = 255  # 8 bits
        with pytest.raises(SpaceBudgetExceeded):
            mem["b"] = 2**15  # 16 more bits: denied
        mem["c"] = 7  # 3 bits: still fits
        assert mem.used_bits == tracker.current_internal_bits == 11
        profile = RunProfile.from_events(sink.events())
        assert profile.denied_total == 1
        assert profile.final_peak_internal_bits == tracker.peak_internal_bits


class TestMetrics:
    def test_counter_labels_and_total(self):
        from repro.observability import MetricsRegistry

        reg = MetricsRegistry()
        c = reg.counter("requests", "test counter")
        c.inc(kind="a")
        c.inc(2, kind="b")
        c.inc(kind="a")
        assert c.value(kind="a") == 2
        assert c.value(kind="b") == 2
        assert c.total == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        from repro.observability import MetricsRegistry

        reg = MetricsRegistry()
        g = reg.gauge("depth", "test gauge")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value() == 4

    def test_histogram_buckets_are_cumulative_with_inf(self):
        from repro.observability import Histogram

        h = Histogram("sizes", "test histogram", buckets=(1.0, 4.0))
        for v in (0, 1, 3, 100):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 104
        (sample,) = h.snapshot()["samples"]
        # cumulative: <=1 holds {0,1}, <=4 adds {3}, +Inf holds everything
        assert sample["buckets"] == {"1": 2, "4": 3, "+Inf": 4}

    def test_registry_get_or_create_and_kind_mismatch(self):
        from repro.observability import MetricsRegistry

        reg = MetricsRegistry()
        c1 = reg.counter("x", "first")
        assert reg.counter("x") is c1
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_callback_gauge_reads_at_snapshot_time(self):
        from repro.observability import MetricsRegistry

        reg = MetricsRegistry()
        state = {"n": 1}
        reg.track("live", lambda: state["n"], "callback gauge")
        assert reg.snapshot()["live"]["samples"][0]["value"] == 1
        state["n"] = 7
        assert reg.snapshot()["live"]["samples"][0]["value"] == 7
        with pytest.raises(ValueError):
            reg.track("live", lambda: 0)  # name already taken

    def test_snapshot_is_deterministic_json(self):
        from repro.observability import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("zeta", "z").inc()
        reg.counter("alpha", "a").inc(kind="x")
        one = json.dumps(reg.to_json_dict())
        two = json.dumps(reg.to_json_dict())
        assert one == two
        names = list(reg.snapshot())
        assert names == sorted(names)
        assert any("alpha" in line for line in reg.summary_lines())


class TestTracer:
    def test_nesting_follows_call_order(self):
        from repro.observability import Tracer

        tracer = Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.end(inner, cost=3)
        tracer.end(outer)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.args["cost"] == 3
        assert outer.duration_us >= inner.duration_us

    def test_double_end_raises(self):
        from repro.observability import Tracer

        tracer = Tracer()
        span = tracer.begin("s")
        tracer.end(span)
        with pytest.raises(ValueError):
            tracer.end(span)

    def test_capacity_drops_are_counted(self):
        from repro.observability import Tracer

        tracer = Tracer(capacity=2)
        spans = [tracer.begin(f"s{i}") for i in range(5)]
        for span in reversed(spans):
            if span.end_us is None:
                tracer.end(span)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert any("3 spans dropped" in l for l in tracer.render_timeline())

    def test_chrome_trace_export_shape(self):
        from repro.observability import Tracer

        tracer = Tracer()
        with tracer.span("work", "engine", n=4):
            tracer.begin("open-child")  # left open deliberately
        doc = tracer.to_chrome_trace(process_name="test")
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"work", "open-child"}
        for e in xs:
            assert e["dur"] > 0 and "pid" in e and "tid" in e
        (child,) = [e for e in xs if e["name"] == "open-child"]
        assert child["args"]["unfinished"] is True
        json.dumps(doc)  # serializable

    def test_write_chrome_trace_file(self, tmp_path):
        from repro.observability import Tracer

        tracer = Tracer()
        with tracer.span("w"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestEngineProbe:
    def test_fingerprint_spans_cover_every_phase_exactly(self, tmp_path):
        """The PR's acceptance criterion: a probed Theorem 8(a) run yields
        Chrome-trace JSON whose spans cover every ``mark_phase`` phase, with
        per-phase reversal totals equal to the RunProfile aggregates."""
        from repro.algorithms.fingerprint import multiset_equality_fingerprint
        from repro.observability import EngineProbe, MetricsRegistry, Tracer
        from repro.problems.encoding import Instance

        words = ("0110", "1010", "0001")
        inst = Instance(words, tuple(reversed(words)))
        ring = RingBufferSink()
        probe = EngineProbe(
            tracer=Tracer(), registry=MetricsRegistry(), sink=ring
        )
        result = multiset_equality_fingerprint(
            inst, random.Random(0), sink=probe
        )
        assert result.accepted
        probe.finish()

        profile = RunProfile.from_events(ring.events())
        phase_spans = {
            s.name: s for s in probe.tracer.spans() if s.category == "phase"
        }
        assert list(phase_spans) == profile.phase_names()
        for phase in profile.phases:
            span = phase_spans[phase.name]
            assert span.finished
            assert span.args["reversals"] == phase.reversals
            assert span.args["steps"] == phase.steps
            assert span.args["peak_internal_bits"] == phase.peak_internal_bits
            assert span.args["entry_internal_bits"] == phase.entry_internal_bits
            assert span.args["exit_internal_bits"] == phase.exit_internal_bits
            assert span.args["denied"] == phase.denied

        path = tmp_path / "fingerprint-trace.json"
        probe.tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        chrome_names = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert set(profile.phase_names()) <= chrome_names

    def test_probe_observes_both_engines_identically(self):
        from repro.machines import equality_machine
        from repro.machines import execute, fast_engine
        from repro.observability import EngineProbe

        machine = equality_machine()
        word = "0101#0101"
        probes = []
        for engine in (execute, fast_engine):
            probe = EngineProbe()
            result = engine.run_deterministic(machine, word, probe=probe)
            probe.finish()
            probes.append((probe, result))
        (p_ref, r_ref), (p_fast, r_fast) = probes
        assert p_ref.steps_observed == p_fast.steps_observed
        assert p_ref.steps_observed == r_ref.statistics.length - 1
        ref_run = p_ref.tracer.find(f"run:{machine.name}")[0]
        fast_run = p_fast.tracer.find(f"run:{machine.name}")[0]
        assert ref_run.args == fast_run.args
        assert ref_run.args["steps"] == r_fast.statistics.length - 1

    def test_probe_forces_compiled_tier_into_streaming_fallback(self):
        """Satellite bugfix: an attached probe needs per-step hooks, so
        the compiled tier (and the ``auto`` front door) must fall back to
        streaming — with probe output byte-identical to calling the
        streaming engine directly, even on a compilable machine."""
        from repro.machines import equality_machine, resolve_engine
        from repro.machines import compiled_engine, fast_engine
        from repro.machines.engine import run_deterministic as front_door
        from repro.observability import EngineProbe

        machine = equality_machine()
        word = "0101#0101"
        probe_free = EngineProbe()
        assert resolve_engine(machine) == "compiled"
        assert resolve_engine(machine, probe=probe_free) == "streaming"

        def observed(run_fn):
            probe = EngineProbe()
            result = run_fn(machine, word, probe=probe)
            probe.finish()
            # structural span records with wall-clock timing stripped:
            # everything else must match byte for byte
            spans = []
            for span in probe.tracer.spans():
                record = span.to_json_dict()
                record.pop("start_us", None)
                record.pop("end_us", None)
                spans.append(json.dumps(record, sort_keys=True))
            return probe.steps_observed, spans, result.statistics

        streaming = observed(fast_engine.run_deterministic)
        compiled = observed(compiled_engine.run_deterministic)
        auto = observed(front_door)
        assert compiled == streaming
        assert auto == streaming

    def test_branch_spans_and_depth_histogram(self):
        from fractions import Fraction

        from repro.machines import coin_flip_machine
        from repro.machines.fast_engine import acceptance_probability
        from repro.observability import EngineProbe, MetricsRegistry

        registry = MetricsRegistry()
        probe = EngineProbe(registry=registry)
        p = acceptance_probability(coin_flip_machine(), "01", probe=probe)
        assert p == Fraction(1, 2)
        branch_spans = [
            s for s in probe.tracer.spans() if s.category == "branch"
        ]
        assert branch_spans and all(s.finished for s in branch_spans)
        assert registry.histogram("branch_depth").count() == len(branch_spans)

    def test_close_exports_both_layers_into_one_jsonl(self, tmp_path):
        from repro.observability import EngineProbe

        path = tmp_path / "combined.jsonl"
        file_sink = JsonlFileSink(str(path))
        probe = EngineProbe(sink=file_sink)
        _tracked_run(probe)
        probe.close()  # finish + export spans + close the wrapped sink
        lines = path.read_text().splitlines()
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "span" in kinds and "phase" in kinds
        # the resource-event layer replays losslessly despite the span
        # lines: a second identical scripted run must produce equal events
        reference = RingBufferSink()
        _tracked_run(reference)
        assert list(replay_jsonl(lines)) == reference.events()


class TestSharedStepGuard:
    """Satellite: both engines share stuck/step-limit/choice-exhausted
    control flow — pinned by differential tests on the failure paths."""

    def _stuck_machine(self):
        from repro.machines import MachineBuilder, R

        b = MachineBuilder("stuck").start("q").accept("a")
        b.on("q", ("0",), "q", ("0",), (R,))
        return b.build()

    def test_stuck_machine_same_error_both_engines(self):
        from repro.errors import MachineError
        from repro.machines import execute, fast_engine

        machine = self._stuck_machine()
        messages = []
        for engine in (execute, fast_engine):
            with pytest.raises(MachineError) as exc:
                engine.run_deterministic(machine, "00")
            messages.append(str(exc.value))
        assert messages[0] == messages[1]
        assert "stuck" in messages[0]

    def test_step_budget_same_error_both_engines(self):
        from repro.errors import StepBudgetExceeded
        from repro.extmem.tape import BLANK
        from repro.machines import MachineBuilder, R
        from repro.machines import execute, fast_engine

        b = MachineBuilder("long").start("q").accept("a")
        b.on("q", (BLANK,), "q", ("0",), (R,))
        machine = b.build()
        messages = []
        for engine in (execute, fast_engine):
            with pytest.raises(StepBudgetExceeded) as exc:
                engine.run_deterministic(machine, "", step_limit=50)
            messages.append(str(exc.value))
        assert messages[0] == messages[1]

    def test_streaming_and_traced_agree_on_stuckness(self):
        from repro.errors import MachineError
        from repro.machines import fast_engine

        machine = self._stuck_machine()
        with pytest.raises(MachineError) as streaming:
            fast_engine.run_deterministic(machine, "00", trace=False)
        with pytest.raises(MachineError) as traced:
            fast_engine.run_deterministic(machine, "00", trace=True)
        assert str(streaming.value) == str(traced.value)

    def test_choice_exhaustion_diagnosed_before_stuckness(self):
        from repro.errors import MachineError
        from repro.machines import coin_flip_machine
        from repro.machines.fast_engine import run_with_choices

        with pytest.raises(MachineError) as exc:
            run_with_choices(coin_flip_machine(), "0", choices="")
        assert "exhausted" in str(exc.value)


class TestSinkCloseSemantics:
    """Satellite: JsonlFileSink close semantics + lossless replay."""

    def test_close_flushes_but_does_not_close_caller_stream(self):
        stream = io.StringIO()
        sink = JsonlFileSink(stream)
        _tracked_run(sink)
        sink.close()
        assert not stream.closed  # caller owns it
        assert stream.getvalue().count("\n") == sink.emitted
        sink.close()  # idempotent on caller-owned streams

    def test_close_closes_owned_path_handle(self, tmp_path):
        path = tmp_path / "owned.jsonl"
        sink = JsonlFileSink(str(path))
        _tracked_run(sink)
        sink.close()
        assert sink._stream.closed
        assert path.read_text().count("\n") == sink.emitted

    def test_replay_roundtrips_denied_and_phase_events_losslessly(self):
        def scripted(sink):
            tracker = ResourceTracker(ResourceBudget(max_internal_bits=4))
            tracker.attach_sink(sink)
            tracker.mark_phase("alpha")
            tracker.charge_internal(4)
            with pytest.raises(SpaceBudgetExceeded):
                tracker.charge_internal(9)
            tracker.mark_phase("omega")

        stream = io.StringIO()
        file_sink = JsonlFileSink(stream)
        scripted(file_sink)
        file_sink.close()
        ring = RingBufferSink()
        scripted(ring)  # an identical run recorded in memory

        replayed = list(replay_jsonl(stream.getvalue().splitlines()))
        assert replayed == ring.events()
        kinds = [e.kind for e in replayed]
        assert KIND_DENIED in kinds and kinds.count(KIND_PHASE) == 2
        denied = next(e for e in replayed if e.kind == KIND_DENIED)
        assert denied.delta == 9 and denied.current_internal_bits == 4


class TestRingBufferMetrics:
    """Satellite: the ring's ``dropped`` count reaches registry snapshots."""

    def test_dropped_count_surfaces_in_snapshot(self):
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        sink = RingBufferSink(capacity=3)
        sink.bind_metrics(registry)
        tracker = ResourceTracker()
        tracker.attach_sink(sink)
        for _ in range(8):
            tracker.charge_step()
        snap = registry.snapshot()
        assert snap["ring_buffer_dropped"]["samples"][0]["value"] == 5
        assert snap["ring_buffer_buffered"]["samples"][0]["value"] == 3
        sink.clear()
        snap = registry.snapshot()
        assert snap["ring_buffer_dropped"]["samples"][0]["value"] == 0


class TestCliTrace:
    def test_trace_algorithm_writes_all_artifacts(self, tmp_path, capsys):
        from repro.__main__ import main

        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        code = main(
            [
                "trace",
                "fingerprint",
                "--n",
                "4",
                "--chrome",
                str(chrome),
                "--jsonl",
                str(jsonl),
                "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "span timeline" in out and "metrics registry" in out
        doc = json.loads(chrome.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"scan1", "params", "scan2"} <= names
        lines = jsonl.read_text().splitlines()
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "span" in kinds  # both layers in one file
        assert list(replay_jsonl(lines))  # event layer still replays

    def test_trace_machine_target(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "equality", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "run:equality" in out and "accepted=True" in out

    def test_trace_randomized_machine_target(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "coin-flip", "--n", "2"]) == 0
        assert "acceptance probability" in capsys.readouterr().out

    def test_trace_unknown_target_fails(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "no-such-target"]) == 2
        assert "known targets" in capsys.readouterr().err
