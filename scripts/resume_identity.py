#!/usr/bin/env python
"""Kill a sweep mid-flight, resume it, prove the interruption invisible.

The CI ``resume-identity`` gate runs this script with no arguments.  It
orchestrates three child processes over the same 12-task seeded sweep:

1. ``--phase full`` — the uninterrupted reference run, journaled to
   ``full.jsonl``;
2. ``--phase crash`` — the same run with ``REPRO_RESUME_KILL_AT=7`` in
   the environment: task 7 calls ``os._exit(1)`` mid-sweep, so the
   child dies exactly the way a preempted CI worker does and leaves a
   ledger with a ``sweep-start``, seven ``task-outcome`` records and no
   ``sweep-end``;
3. ``--phase resume`` — ``run_batch(resume_from=crashed.jsonl)``,
   journaled to ``resumed.jsonl``.

The kill switch lives in the *environment*, not in the task payload, so
the crashed run's sweep fingerprint is identical to the reference run's
— resume must accept it.  The gate then asserts two identities:

* the resumed run's **values** equal the uninterrupted run's values
  (per-task rng streams are anchored to global task indices, so the
  re-dispatched tail cannot drift);
* the resumed **ledger strips byte-identical** to the uninterrupted
  ledger (replayed outcomes are re-journaled in index order and the
  ``sweep-resume`` marker is wall-only, so the interruption leaves no
  deterministic trace).

Exit status 0 iff both hold.
"""

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

KILL_ENV = "REPRO_RESUME_KILL_AT"
KILL_AT = 7
TASKS = 12
SEED = 20060626  # PODS 2006


def task_body(index, rng):
    if os.environ.get(KILL_ENV) == str(index):
        os._exit(1)  # a preempted worker: no exception, no sweep-end
    return [rng.randrange(10**6) for _ in range(5)]


def _tasks():
    from repro.parallel import BatchTask

    return [
        BatchTask.call(task_body, i, seeded=True) for i in range(TASKS)
    ]


def run_phase(ledger_path, values_path, resume_from=None):
    from repro.observability.ledger import LedgerWriter
    from repro.parallel import run_batch

    with LedgerWriter(ledger_path) as ledger:
        result = run_batch(
            _tasks(),
            seed=SEED,
            label="resume-identity",
            ledger=ledger,
            resume_from=resume_from,
        )
    if values_path:
        Path(values_path).write_text(
            json.dumps(result.values()) + "\n", encoding="utf-8"
        )
    return 0


def orchestrate(workdir):
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    script = str(Path(__file__).resolve())
    full_ledger = workdir / "full.jsonl"
    crashed_ledger = workdir / "crashed.jsonl"
    resumed_ledger = workdir / "resumed.jsonl"
    full_values = workdir / "full-values.json"
    resumed_values = workdir / "resumed-values.json"

    def child(phase, ledger, values=None, resume_from=None, env=None):
        cmd = [sys.executable, script, "--phase", phase, "--ledger", str(ledger)]
        if values:
            cmd += ["--values", str(values)]
        if resume_from:
            cmd += ["--resume-from", str(resume_from)]
        merged = dict(os.environ)
        merged.pop(KILL_ENV, None)
        merged.update(env or {})
        return subprocess.run(cmd, env=merged).returncode

    rc = child("full", full_ledger, values=full_values)
    if rc != 0:
        print(f"FAIL: uninterrupted run exited {rc}", file=sys.stderr)
        return 1
    rc = child("crash", crashed_ledger, env={KILL_ENV: str(KILL_AT)})
    if rc == 0:
        print("FAIL: the crash run was supposed to die", file=sys.stderr)
        return 1
    from repro.observability.ledger import load_ledger

    records, _ = load_ledger(crashed_ledger)
    kinds = [r["kind"] for r in records]
    if "sweep-end" in kinds:
        print("FAIL: crashed ledger has a sweep-end", file=sys.stderr)
        return 1
    landed = kinds.count("task-outcome")
    if not 0 < landed < TASKS:
        print(
            f"FAIL: crash landed {landed}/{TASKS} outcomes — not mid-sweep",
            file=sys.stderr,
        )
        return 1
    print(
        f"crashed mid-sweep as planned: {landed}/{TASKS} outcomes "
        "journaled, no sweep-end"
    )
    rc = child(
        "resume", resumed_ledger, values=resumed_values,
        resume_from=crashed_ledger,
    )
    if rc != 0:
        print(f"FAIL: resume run exited {rc}", file=sys.stderr)
        return 1

    from repro.observability.ledger import strip_nondeterministic

    full = json.loads(full_values.read_text(encoding="utf-8"))
    resumed = json.loads(resumed_values.read_text(encoding="utf-8"))
    if full != resumed:
        print("FAIL: resumed values differ from the uninterrupted run",
              file=sys.stderr)
        return 1
    stripped_full = strip_nondeterministic(full_ledger)
    stripped_resumed = strip_nondeterministic(resumed_ledger)
    if stripped_full != stripped_resumed:
        for i, (a, b) in enumerate(zip(stripped_full, stripped_resumed)):
            if a != b:
                print(f"first divergence at stripped line {i}:",
                      file=sys.stderr)
                print(f"  full:    {a}", file=sys.stderr)
                print(f"  resumed: {b}", file=sys.stderr)
                break
        print("FAIL: resumed ledger does not strip byte-identical",
              file=sys.stderr)
        return 1
    print(
        f"resume identity holds: {TASKS} values equal, "
        f"{len(stripped_full)} stripped ledger lines byte-identical"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--phase", choices=("full", "crash", "resume"),
        help="child mode (the gate runs with no arguments)",
    )
    parser.add_argument("--ledger", help="JSONL ledger path for this phase")
    parser.add_argument("--values", help="write the batch values here")
    parser.add_argument("--resume-from", help="crashed ledger to resume")
    parser.add_argument(
        "--workdir", default="resume-identity",
        help="orchestrator scratch directory (default: resume-identity/)",
    )
    args = parser.parse_args(argv)
    if args.phase is None:
        return orchestrate(args.workdir)
    if not args.ledger:
        parser.error("--phase needs --ledger")
    return run_phase(args.ledger, args.values, resume_from=args.resume_from)


if __name__ == "__main__":
    sys.exit(main())
