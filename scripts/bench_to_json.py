#!/usr/bin/env python
"""Regenerate BENCH_engine.json — the engine-benchmark trajectory point.

Runs the reference-vs-streaming engine sweep from
``benchmarks/bench_engine.py`` and writes the rows plus a summary to JSON,
so the speedup claimed in the repo is reproducible with one command:

    python scripts/bench_to_json.py                 # full sweep
    python scripts/bench_to_json.py --quick         # CI smoke (small n)
    python scripts/bench_to_json.py -o out.json

Bench-regression mode: ``--compare BENCH_engine.json`` additionally checks
this run's top-N speedup against the checked-in baseline and reports a
regression when it falls below ``tolerance × baseline`` (default 0.8 —
timing noise on shared runners makes a tighter bound flaky).  The verdict
rides in the JSON payload under ``comparison`` and in the exit status, so
CI can surface it non-gatingly as an artifact.

No third-party dependencies; stdlib + the repo only.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_engine import (  # noqa: E402  (path setup must come first)
    GATE_MACHINE,
    GATE_SPEEDUP,
    SIZES,
    run_engine_benchmark,
    top_speedup,
)

QUICK_SIZES = (16, 64)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="output path (default: BENCH_engine.json at the repo root)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-n smoke sweep (for CI); skips the speedup gate",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repetitions per cell (best-of; default 5)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE_JSON",
        help="compare this run's top-N speedup against a previous payload "
        "(e.g. the checked-in BENCH_engine.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.8,
        help="regression threshold: fail if speedup < tolerance x baseline "
        "(default 0.8)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if not 0.0 < args.tolerance <= 1.0:
        parser.error("--tolerance must be in (0, 1]")

    sizes = QUICK_SIZES if args.quick else SIZES
    rows = run_engine_benchmark(sizes=sizes, repeats=args.repeats)
    gate = top_speedup(rows)
    payload = {
        "benchmark": "engine",
        "description": (
            "run_deterministic: reference engine (full configuration "
            "history + post-hoc statistics) vs. streaming engine "
            "(incremental statistics, O(1) memory per step)"
        ),
        "command": "python scripts/bench_to_json.py",
        "python": platform.python_version(),
        "machine_sweep": sorted({r["machine"] for r in rows}),
        "sizes": list(sizes),
        "repeats": args.repeats,
        "unit": "seconds",
        "rows": rows,
        "summary": {
            "gate_machine": GATE_MACHINE,
            "gate_speedup_required": GATE_SPEEDUP,
            "top_n_speedup": round(gate, 2),
            "all_cells_verified_identical": all(
                r["verified_identical"] for r in rows
            ),
        },
    }
    regressed = False
    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        base_speedup = baseline["summary"]["top_n_speedup"]
        floor = args.tolerance * base_speedup
        regressed = gate < floor
        payload["comparison"] = {
            "baseline": args.compare,
            "baseline_top_n_speedup": base_speedup,
            "tolerance": args.tolerance,
            "floor": round(floor, 2),
            "measured_top_n_speedup": round(gate, 2),
            "regressed": regressed,
        }

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}: top-N speedup {gate:.1f}x on {GATE_MACHINE}")
    if args.compare:
        verdict = "REGRESSION" if regressed else "ok"
        print(
            f"compare vs {args.compare}: baseline "
            f"{payload['comparison']['baseline_top_n_speedup']:.1f}x, floor "
            f"{payload['comparison']['floor']:.1f}x "
            f"(tolerance {args.tolerance}) -> {verdict}"
        )
    if regressed:
        return 1
    if not args.quick and gate < GATE_SPEEDUP:
        print(
            f"WARNING: speedup below the {GATE_SPEEDUP}x gate", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
