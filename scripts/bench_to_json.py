#!/usr/bin/env python
"""Regenerate BENCH_engine.json — the engine-benchmark trajectory point.

Runs the serial engine sweep (reference vs. streaming vs. compiled), the
batch-tier sweep (lock-step lanes vs. a compiled serial loop) and — when
NumPy is importable — the SIMD-tier sweep (state-cohort kernels vs. the
batch tier at 1024 lanes) from ``benchmarks/bench_engine.py`` and writes
one row per tier (each row carries an ``engine`` field, plus derived
``inputs_per_second`` / ``steps_per_second`` throughput) and a summary
to JSON, so the speedups claimed in the repo are reproducible with one
command:

    python scripts/bench_to_json.py                 # full sweep
    python scripts/bench_to_json.py --quick         # CI smoke (small n)
    python scripts/bench_to_json.py -o out.json

Bench-regression mode: ``--compare BENCH_engine.json`` checks this run
against the checked-in baseline through
:func:`repro.observability.report.compare_bench`: the overall top-N
speedup gate plus one verdict per (engine, workload) cell, each compared
at the largest input size present in both payloads and judged against
``tolerance × baseline`` (default 0.8 — timing noise on shared runners
makes a tighter bound flaky).  A regression names its culprit on stderr
(which engine, which workload, measured vs. floor); the full detail
rides in the JSON payload under ``comparison`` (flat historical keys
plus ``rows``/``regressions``) and in the exit status, so CI can
surface it non-gatingly as an artifact.  Comparison is tolerant of tier
growth: engines present in this run but absent from the baseline's rows
are reported under ``engines_new`` instead of failing, so a payload
with a freshly added tier still compares cleanly against an older
baseline.

Ledger mode: ``--ledger PATH`` journals both sweeps (task outcomes,
heartbeats, stalls) to a JSONL sweep ledger; summarize it afterwards
with ``python -m repro report summarize PATH``.

Cache mode: ``--cache DIR`` (or ``$REPRO_CACHE_DIR``) routes each cell's
three-tier correctness cross-check through the content-addressed result
store in :mod:`repro.cache` — a warm rerun re-verifies unchanged cells
without executing a single engine step.  Timings are **never** cached:
every invocation re-measures every cell, cache or not, so the artifact
stays an honest trajectory point.  ``--no-cache`` forces the scratch
path; ``--cache-stats PATH`` dumps the store's disk stats for CI
artifacts.

Parallel mode: ``--jobs N`` dispatches the engine sweep over N worker
processes (cell timings are still taken inside the worker running the
cell) and additionally writes ``BENCH_parallel.json`` — serial vs.
parallel wall-clock for the contract-audit sweep and the engine sweep,
with the host core count.  Purely informational, never gating: speedup
depends on the runner's cores.

No third-party dependencies; stdlib + the repo only.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_engine import (  # noqa: E402  (path setup must come first)
    BATCH_GATE_MACHINES,
    BATCH_GATE_SPEEDUP,
    BATCH_LANES,
    COMPILED_GATE_MACHINES,
    COMPILED_GATE_SPEEDUP,
    GATE_MACHINE,
    GATE_SPEEDUP,
    SIMD_GATE_MACHINES,
    SIMD_GATE_SPEEDUP,
    SIMD_LANES,
    SIZES,
    batch_tier_rows,
    batch_top_speedup,
    compiled_top_speedup,
    per_tier_rows,
    run_batch_benchmark,
    run_engine_benchmark,
    run_simd_benchmark,
    simd_tier_rows,
    simd_top_speedup,
    top_speedup,
)
from repro.machines import is_simd_available  # noqa: E402

QUICK_SIZES = (16, 64)


def with_throughput(rows):
    """Add per-row ``inputs_per_second`` / ``steps_per_second`` fields.

    Derived, never measured separately: ``seconds`` on every tier row is
    wall-clock per input, so its reciprocal is input throughput, and
    rows that carry the run length (the serial tiers) additionally get
    engine steps per second — the cross-tier normalizer, since a cheaper
    second on a shorter run is not a win.  Rows without a positive
    timing (or without ``run_length``) simply omit the fields.
    """
    out = []
    for r in rows:
        row = dict(r)
        seconds = row.get("seconds")
        if isinstance(seconds, (int, float)) and seconds > 0:
            row["inputs_per_second"] = round(1.0 / seconds, 1)
            run_length = row.get("run_length")
            if isinstance(run_length, (int, float)):
                row["steps_per_second"] = round(run_length / seconds, 1)
        out.append(row)
    return out


def compare_against_baseline(gate, all_rows, baseline, tolerance):
    """The ``--compare`` verdict as a plain dict, testable in isolation.

    Delegates to :func:`repro.observability.report.compare_bench` — the
    noise-aware per-engine/per-workload detector — and keeps this
    script's historical flat keys on top of its ``rows`` /
    ``regressions`` detail, so old consumers of the payload's
    ``comparison`` block keep parsing it.

    Guards the vacuous-pass trap: a baseline whose ``top_n_speedup`` is
    missing, non-numeric or non-positive cannot anchor a regression
    floor (``tolerance × 0 = 0`` passes any measurement), so such a
    baseline yields ``baseline_invalid: True`` with ``floor: None`` and
    ``regressed: False`` — the caller warns loudly instead of silently
    blessing the run.
    """
    from repro.observability.report import compare_bench

    detail = compare_bench(
        {"summary": {"top_n_speedup": gate}, "rows": list(all_rows)},
        baseline,
        tolerance=tolerance,
    )
    base_engines = sorted(
        {r.get("engine") for r in baseline.get("rows", ())} - {None}
    )
    run_engines = sorted({r.get("engine") for r in all_rows} - {None})
    # engines this run has but the baseline predates: informational,
    # never a comparison failure — a new tier has no baseline yet
    engines_new = [e for e in run_engines if e not in base_engines]
    return {
        "baseline_top_n_speedup": detail["top"]["baseline"],
        "baseline_invalid": detail["baseline_invalid"],
        "baseline_engines": base_engines,
        "engines_new": engines_new,
        "tolerance": tolerance,
        "floor": detail["top"]["floor"],
        "measured_top_n_speedup": round(gate, 2),
        "regressed": detail["regressed"],
        "rows": detail["rows"],
        "regressions": detail["regressions"],
    }


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def parallel_payload(jobs, quick, repeats, sizes):
    """Serial-vs-parallel wall-clock for the audit and engine sweeps.

    The work is identical on both sides (the parallel audit JSON is
    byte-identical to the serial one by construction), so the ratio is a
    pure scheduling measurement.  Recorded, never gated: the speedup is
    a property of the host's core count, not of the code.
    """
    from repro.observability.audit import run_contract_audit

    audit_serial = _timed(lambda: run_contract_audit(quick=quick))
    audit_parallel = _timed(lambda: run_contract_audit(quick=quick, jobs=jobs))
    engine_serial = _timed(
        lambda: run_engine_benchmark(sizes=sizes, repeats=repeats)
    )
    engine_parallel = _timed(
        lambda: run_engine_benchmark(sizes=sizes, repeats=repeats, jobs=jobs)
    )
    return {
        "benchmark": "parallel",
        "description": (
            "wall-clock of the contract-audit sweep and the engine sweep, "
            "serial vs. repro.parallel multiprocess dispatch; results are "
            "bit-identical on both sides, only scheduling differs"
        ),
        "command": f"python scripts/bench_to_json.py --jobs {jobs}"
        + (" --quick" if quick else ""),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "process_cpu_count": getattr(os, "process_cpu_count", os.cpu_count)(),
        "topology": {"executor": "parallel", "jobs": jobs, "shards": None},
        "jobs": jobs,
        "quick": quick,
        "unit": "seconds",
        "sweeps": {
            "audit": {
                "mode": "quick" if quick else "full",
                "serial_seconds": round(audit_serial, 4),
                "parallel_seconds": round(audit_parallel, 4),
                "speedup": round(audit_serial / audit_parallel, 2),
            },
            "engine": {
                "sizes": list(sizes),
                "repeats": repeats,
                "serial_seconds": round(engine_serial, 4),
                "parallel_seconds": round(engine_parallel, 4),
                "speedup": round(engine_serial / engine_parallel, 2),
            },
        },
        "gating": False,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="output path (default: BENCH_engine.json at the repo root)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-n smoke sweep (for CI); skips the speedup gate",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repetitions per cell (best-of; default 5)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE_JSON",
        help="compare this run's top-N speedup against a previous payload "
        "(e.g. the checked-in BENCH_engine.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.8,
        help="regression threshold: fail if speedup < tolerance x baseline "
        "(default 0.8)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweeps (default 1 = serial); with "
        "--jobs > 1 also writes the serial-vs-parallel wall-clock record",
    )
    parser.add_argument(
        "--parallel-output",
        default=str(REPO_ROOT / "BENCH_parallel.json"),
        help="where --jobs > 1 writes the wall-clock record "
        "(default: BENCH_parallel.json at the repo root)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=os.environ.get("REPRO_CACHE_DIR"),
        help="result-store directory for the correctness cross-checks "
        "(default: $REPRO_CACHE_DIR if set); timings are NEVER cached",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache / $REPRO_CACHE_DIR and verify from scratch",
    )
    parser.add_argument(
        "--cache-stats",
        metavar="PATH",
        help="write the cache's post-run disk stats as JSON (requires "
        "an active cache)",
    )
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        help="append sweep/task records for both benchmark sweeps to this "
        "JSONL ledger (read it back with `repro report summarize`)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if not 0.0 < args.tolerance <= 1.0:
        parser.error("--tolerance must be in (0, 1]")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    cache_dir = None if args.no_cache else args.cache
    if args.cache_stats and cache_dir is None:
        parser.error("--cache-stats needs an active --cache directory")

    ledger = None
    if args.ledger:
        from repro.observability.ledger import LedgerWriter

        ledger = LedgerWriter(args.ledger)

    sizes = QUICK_SIZES if args.quick else SIZES
    try:
        rows = run_engine_benchmark(
            sizes=sizes, repeats=args.repeats, jobs=args.jobs,
            cache_dir=cache_dir, ledger=ledger,
        )
        batch_rows = run_batch_benchmark(
            sizes=sizes, repeats=args.repeats, jobs=args.jobs,
            cache_dir=cache_dir, ledger=ledger,
        )
        simd_rows = []
        if is_simd_available():
            simd_rows = run_simd_benchmark(
                sizes=sizes, repeats=args.repeats, jobs=args.jobs,
                cache_dir=cache_dir, ledger=ledger,
            )
    finally:
        if ledger is not None:
            ledger.close()
    if ledger is not None:
        print(
            f"sweep ledger -> {args.ledger} "
            f"({ledger.records_written} records)"
        )
    gate = top_speedup(rows)
    compiled_gates = {
        name: round(compiled_top_speedup(rows, name), 2)
        for name in COMPILED_GATE_MACHINES
    }
    batch_gates = {
        name: round(batch_top_speedup(batch_rows, name), 2)
        for name in BATCH_GATE_MACHINES
    }
    simd_gates = {
        name: round(simd_top_speedup(simd_rows, name), 2)
        for name in SIMD_GATE_MACHINES
    } if simd_rows else {}
    all_rows = with_throughput(
        per_tier_rows(rows)
        + batch_tier_rows(batch_rows)
        + simd_tier_rows(simd_rows)
    )
    payload = {
        "benchmark": "engine",
        "description": (
            "run_deterministic: reference engine (full configuration "
            "history + post-hoc statistics) vs. streaming engine "
            "(incremental statistics, O(1) memory per step) vs. compiled "
            "engine (dense transition tables + macro-step run "
            "compression) vs. batch engine (one compilation, lock-step "
            "lanes over structure-of-arrays tapes, timed per input on "
            "whole random-input batches) vs. SIMD engine (the batch "
            "layout as NumPy arrays, state-cohort kernels advancing "
            "every live lane at once); one row per tier, keyed by the "
            "'engine' field"
        ),
        "command": "python scripts/bench_to_json.py",
        "python": platform.python_version(),
        "machine_sweep": sorted({r["machine"] for r in rows}),
        "sizes": list(sizes),
        "repeats": args.repeats,
        "unit": "seconds",
        "rows": all_rows,
        "summary": {
            "gate_machine": GATE_MACHINE,
            "gate_speedup_required": GATE_SPEEDUP,
            # streaming over reference — the quantity --compare baselines
            # have always recorded, so old payloads stay comparable
            "top_n_speedup": round(gate, 2),
            "compiled_gate_machines": list(COMPILED_GATE_MACHINES),
            "compiled_gate_speedup_required": COMPILED_GATE_SPEEDUP,
            # compiled over streaming, per gated machine at top N
            "compiled_top_n_speedup": compiled_gates,
            "batch_gate_machines": list(BATCH_GATE_MACHINES),
            "batch_gate_speedup_required": BATCH_GATE_SPEEDUP,
            "batch_lanes": BATCH_LANES,
            # batch over compiled, per input, per gated machine at top N
            "batch_top_n_speedup": batch_gates,
            "simd_gate_machines": list(SIMD_GATE_MACHINES),
            "simd_gate_speedup_required": SIMD_GATE_SPEEDUP,
            "simd_lanes": SIMD_LANES,
            # NumPy importable in this run; without it the SIMD sweep is
            # skipped (the fallback path IS the batch tier)
            "simd_available": bool(simd_rows),
            # simd over batch, per input, per gated machine at top N
            "simd_top_n_speedup": simd_gates,
            "all_cells_verified_identical": all(
                r["verified_identical"] for r in all_rows
            ),
        },
    }
    regressed = False
    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        comparison = compare_against_baseline(
            gate, all_rows, baseline, args.tolerance
        )
        payload["comparison"] = dict(comparison, baseline=args.compare)
        regressed = comparison["regressed"]
        if comparison["baseline_invalid"]:
            print(
                f"WARNING: baseline {args.compare} has no positive "
                f"top_n_speedup — the regression floor would be vacuous; "
                f"comparison recorded as baseline_invalid, not as a pass",
                file=sys.stderr,
            )

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    compiled_note = ", ".join(
        f"{name} {value:.1f}x" for name, value in compiled_gates.items()
    )
    batch_note = ", ".join(
        f"{name} {value:.1f}x" for name, value in batch_gates.items()
    )
    simd_note = (
        "; simd over batch per input (%d lanes): %s" % (
            SIMD_LANES,
            ", ".join(
                f"{name} {value:.1f}x" for name, value in simd_gates.items()
            ),
        )
        if simd_gates
        else "; simd sweep skipped (NumPy absent)"
    )
    print(
        f"wrote {args.output}: streaming {gate:.1f}x over reference on "
        f"{GATE_MACHINE}; compiled over streaming: {compiled_note}; "
        f"batch over compiled per input ({BATCH_LANES} lanes): "
        f"{batch_note}{simd_note}"
    )
    if args.jobs > 1:
        record = parallel_payload(args.jobs, args.quick, args.repeats, sizes)
        Path(args.parallel_output).write_text(
            json.dumps(record, indent=2) + "\n"
        )
        sweeps = record["sweeps"]
        print(
            f"wrote {args.parallel_output}: audit "
            f"{sweeps['audit']['speedup']:.2f}x, engine "
            f"{sweeps['engine']['speedup']:.2f}x at --jobs {args.jobs} "
            f"({record['cpu_count']} cores; informational, non-gating)"
        )
    if args.cache_stats:
        from repro.cache import ResultStore

        stats = ResultStore(cache_dir).stats()
        Path(args.cache_stats).write_text(json.dumps(stats, indent=2) + "\n")
        print(
            f"wrote {args.cache_stats}: {stats['entries']} cache entries "
            f"under {cache_dir}"
        )
    if args.compare:
        comparison = payload["comparison"]
        if comparison["baseline_invalid"]:
            print(
                f"compare vs {args.compare}: baseline invalid "
                f"(no positive top_n_speedup) -> no verdict"
            )
        else:
            verdict = "REGRESSION" if regressed else "ok"
            print(
                f"compare vs {args.compare}: baseline "
                f"{comparison['baseline_top_n_speedup']:.1f}x, floor "
                f"{comparison['floor']:.1f}x "
                f"(tolerance {args.tolerance}) -> {verdict}"
            )
        # name exactly what fell below the floor and by how much —
        # "REGRESSION" with no culprit is not actionable
        for line in comparison["regressions"]:
            print(f"  regression: {line}", file=sys.stderr)
    if regressed:
        return 1
    if not args.quick:
        if gate < GATE_SPEEDUP:
            print(
                f"WARNING: streaming speedup below the {GATE_SPEEDUP}x gate",
                file=sys.stderr,
            )
            return 1
        below = [
            name
            for name, value in compiled_gates.items()
            if value < COMPILED_GATE_SPEEDUP
        ]
        if below:
            print(
                f"WARNING: compiled speedup below the "
                f"{COMPILED_GATE_SPEEDUP}x gate on {', '.join(below)}",
                file=sys.stderr,
            )
            return 1
        batch_below = [
            name
            for name, value in batch_gates.items()
            if value < BATCH_GATE_SPEEDUP
        ]
        if batch_below:
            print(
                f"WARNING: batch speedup below the {BATCH_GATE_SPEEDUP}x "
                f"gate on {', '.join(batch_below)}",
                file=sys.stderr,
            )
            return 1
        simd_below = [
            name
            for name, value in simd_gates.items()
            if value < SIMD_GATE_SPEEDUP
        ]
        if simd_below:
            print(
                f"WARNING: simd speedup below the {SIMD_GATE_SPEEDUP}x "
                f"gate on {', '.join(simd_below)}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
