#!/usr/bin/env python
"""Regenerate BENCH_engine.json — the engine-benchmark trajectory point.

Runs the reference-vs-streaming engine sweep from
``benchmarks/bench_engine.py`` and writes the rows plus a summary to JSON,
so the speedup claimed in the repo is reproducible with one command:

    python scripts/bench_to_json.py                 # full sweep
    python scripts/bench_to_json.py --quick         # CI smoke (small n)
    python scripts/bench_to_json.py -o out.json

No third-party dependencies; stdlib + the repo only.
"""

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_engine import (  # noqa: E402  (path setup must come first)
    GATE_MACHINE,
    GATE_SPEEDUP,
    SIZES,
    run_engine_benchmark,
    top_speedup,
)

QUICK_SIZES = (16, 64)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="output path (default: BENCH_engine.json at the repo root)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-n smoke sweep (for CI); skips the speedup gate",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repetitions per cell (best-of; default 5)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    sizes = QUICK_SIZES if args.quick else SIZES
    rows = run_engine_benchmark(sizes=sizes, repeats=args.repeats)
    gate = top_speedup(rows)
    payload = {
        "benchmark": "engine",
        "description": (
            "run_deterministic: reference engine (full configuration "
            "history + post-hoc statistics) vs. streaming engine "
            "(incremental statistics, O(1) memory per step)"
        ),
        "command": "python scripts/bench_to_json.py",
        "python": platform.python_version(),
        "machine_sweep": sorted({r["machine"] for r in rows}),
        "sizes": list(sizes),
        "repeats": args.repeats,
        "unit": "seconds",
        "rows": rows,
        "summary": {
            "gate_machine": GATE_MACHINE,
            "gate_speedup_required": GATE_SPEEDUP,
            "top_n_speedup": round(gate, 2),
            "all_cells_verified_identical": all(
                r["verified_identical"] for r in rows
            ),
        },
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}: top-N speedup {gate:.1f}x on {GATE_MACHINE}")
    if not args.quick and gate < GATE_SPEEDUP:
        print(
            f"WARNING: speedup below the {GATE_SPEEDUP}x gate", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
