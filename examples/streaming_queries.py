#!/usr/bin/env python
"""Query evaluation on streams — the Section 4 reductions, end to end.

Takes a SET-EQUALITY instance and decides it three ways:

1. relational algebra: Q′ = (R1 − R2) ∪ (R2 − R1) on tuple streams, with
   the reversal count of the tape-backed evaluator (Theorem 11);
2. XQuery: the paper's query Q on the XML encoding (Theorem 12);
3. XPath: the Figure 1 filter, run in both directions (Theorem 13).

    python examples/streaming_queries.py
"""

import random

from repro.problems import (
    SET_EQUALITY,
    random_equal_instance,
    random_unequal_instance,
)
from repro.queries.relational import (
    StreamingEvaluator,
    set_equality_database,
    symmetric_difference_query,
)
from repro.queries.relational.streaming import streaming_scan_budget
from repro.queries.xml import instance_to_document, serialize
from repro.queries.xpath import FIGURE1_TEXT, figure1_query, matches
from repro.queries.xquery import evaluate_xquery, theorem12_query

rng = random.Random(42)


def decide_with_relational_algebra(instance) -> bool:
    query = symmetric_difference_query()
    db = set_equality_database(instance)
    evaluator = StreamingEvaluator(db)
    result = evaluator.evaluate(query)
    report = evaluator.report()
    budget = streaming_scan_budget(query, db.total_size())
    print(
        f"  relational: |Q'(db)| = {result.cardinality}, "
        f"{report.scans} scans (budget {budget}, N = {db.total_size()})"
    )
    return result.is_empty


def decide_with_xquery(instance) -> bool:
    doc = instance_to_document(instance)
    out = evaluate_xquery(theorem12_query(), doc)
    text = serialize(out[0])
    print(f"  xquery:     {text}  (stream length {doc.stream_length})")
    return text == "<result><true/></result>"


def decide_with_xpath(instance) -> bool:
    query = figure1_query()
    forward = matches(query, instance_to_document(instance))
    backward = matches(query, instance_to_document(instance.swapped()))
    print(f"  xpath:      X−Y nonempty: {forward}, Y−X nonempty: {backward}")
    return not forward and not backward


def main() -> None:
    print(f"Figure 1 query: {FIGURE1_TEXT}\n")
    for label, instance in (
        ("equal sets", random_equal_instance(8, 6, rng)),
        ("unequal sets", random_unequal_instance(8, 6, rng)),
    ):
        truth = SET_EQUALITY(instance)
        print(f"{label} (ground truth: {truth}):")
        answers = {
            "relational": decide_with_relational_algebra(instance),
            "xquery": decide_with_xquery(instance),
            "xpath": decide_with_xpath(instance),
        }
        assert all(a == truth for a in answers.values()), answers
        print("  all three engines agree with the reference decider\n")


if __name__ == "__main__":
    main()
