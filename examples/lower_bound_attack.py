#!/usr/bin/env python
"""The Lemma 21 lower-bound argument, executed as an attack.

The paper proves that no list machine with few reversals and few states
solves the CHECK-φ promise problem with one-sided error.  The proof is
constructive per machine: fix a good choice sequence (Lemma 26), bucket
accepting runs by skeleton, find an uncompared pair (i, m+φ(i)) —
guaranteed by the merge lemma — and splice two accepting runs into an
accepting run on a NO-instance (Lemma 34).

This script runs that construction against a concrete victim: a one-scan
deterministic list machine that compares XOR fingerprints of the two
halves.  It accepts every yes-instance, and the attack mechanically digs
up a no-instance it also accepts.

    python examples/lower_bound_attack.py
"""

import itertools

from repro.listmachine import (
    compared_pairs,
    lemma21_attack,
    run_deterministic,
    skeleton_of_run,
)
from repro.listmachine.examples import single_scan_parity_nlm
from repro.problems import CheckPhiFamily


def main() -> None:
    m, n_bits = 2, 3
    family = CheckPhiFamily(m, n_bits)
    print(f"CHECK-φ family: m={m}, values in {{0,1}}^{n_bits}, φ = {family.phi}")

    # enumerate the full yes-family I_eq
    yes_inputs = []
    for choices in itertools.product(
        *[family.intervals.enumerate_interval(j) for j in range(m)]
    ):
        inst = family.instance_from_choices(list(choices))
        yes_inputs.append(tuple(inst.first) + tuple(inst.second))
    print(f"|I_eq| = {len(yes_inputs)} yes-instances enumerated")

    # the victim: one scan, one parity bit of state
    alphabet = frozenset(v for inp in yes_inputs for v in inp)
    victim = single_scan_parity_nlm(alphabet, 2 * m)
    accepted = sum(
        run_deterministic(victim, list(v)).accepts(victim) for v in yes_inputs
    )
    print(
        f"victim machine: single scan, k={victim.k} states; "
        f"accepts {accepted}/{len(yes_inputs)} yes-instances"
    )

    # its runs never compare any pair of input positions
    sample_run = run_deterministic(victim, list(yes_inputs[0]))
    pairs = compared_pairs(skeleton_of_run(sample_run))
    print(f"compared position pairs in a sample skeleton: {sorted(pairs) or '∅'}")

    # what a skeleton actually looks like (Definition 28)
    from repro.listmachine.render import render_skeleton

    print()
    print(render_skeleton(skeleton_of_run(sample_run)))

    # the attack
    outcome = lemma21_attack(victim, yes_inputs, family.phi, r=1)
    assert outcome.success, outcome.detail
    print()
    print("attack succeeded:")
    print(f"  donor v        = {outcome.donor_v}")
    print(f"  donor w        = {outcome.donor_w}")
    print(f"  uncompared i   = {outcome.uncompared_index}")
    print(f"  fooling input  = {outcome.fooling_input}")
    print(f"  {outcome.detail}")

    u = outcome.fooling_input
    assert run_deterministic(victim, list(u)).accepts(victim)
    assert any(u[i] != u[m + family.phi[i]] for i in range(m))
    print()
    print(
        "the machine accepts a no-instance with probability 1 — it cannot "
        "realize the RST (no-false-positives) promise, exactly as Theorem 6 "
        "predicts for machines below the Θ(log N) reversal threshold."
    )


if __name__ == "__main__":
    main()
