#!/usr/bin/env python
"""The paper's open problem: DISJOINT-SETS.

The conclusion of the paper singles out the *disjoint sets* problem —
decide whether {v_1..v_m} ∩ {v'_1..v'_m} = ∅ — as looking very similar to
set equality yet resisting the lower-bound technique.  This script maps
the landscape with the library:

1. the deterministic route still works: sort both halves, one merge scan
   — O(log N) reversals, same as equality;
2. the fingerprinting route does NOT transfer: power-sum sketches certify
   *equality* one-sidedly, but equality of sketches says nothing about
   disjointness — we measure both error directions of the natural
   attempt and watch it be two-sided (useless for (co-)RST);
3. the class layer answers OPEN, matching the paper.

    python examples/open_problem_disjoint_sets.py
"""

import random

from repro.algorithms import sets_disjoint_deterministic
from repro.core import CoRST, GrowthRate, RST
from repro.numbertheory import bertrand_prime, random_prime_at_most
from repro.problems import DISJOINT_SETS, decode_instance, encode_instance

rng = random.Random(9)


def disjoint_deterministic(instance) -> bool:
    """Sort both halves; one parallel scan finds any common element."""
    return sets_disjoint_deterministic(instance).accepted


def sketchy_disjointness_attempt(instance, rng) -> bool:
    """A (doomed) fingerprint-style test: accept iff the power-sum sketches
    of the two halves are 'unrelated' (here: unequal).

    Equality of multisets implies equal sketches, so this test rejects
    equal halves — but disjointness is about *intersection*, and sketches
    of intersecting-but-unequal halves collide or differ essentially at
    random.  The measurement below shows errors in BOTH directions, which
    is fatal for one-sided classes.
    """
    inst = decode_instance(instance) if isinstance(instance, str) else instance
    if inst.m == 0:
        return True
    n = max(len(v) for v in inst.first + inst.second) + 1
    k = inst.m**3 * n * max(1, (inst.m**3 * n).bit_length())
    p1 = random_prime_at_most(k, rng)
    p2 = bertrand_prime(k)
    x = rng.randint(1, p2 - 1)
    sums = [0, 0]
    for half, values in enumerate((inst.first, inst.second)):
        for v in values:
            sums[half] = (sums[half] + pow(x, int("1" + v, 2) % p1, p2)) % p2
    return sums[0] != sums[1]


def main() -> None:
    # 1. deterministic: works at Θ(log N), like equality -------------------
    yes = encode_instance(["000", "001"], ["110", "111"])
    no = encode_instance(["000", "001"], ["001", "111"])
    assert disjoint_deterministic(yes) == DISJOINT_SETS(yes) is True
    assert disjoint_deterministic(no) == DISJOINT_SETS(no) is False
    print("deterministic sort+merge decides DISJOINT-SETS correctly "
          "(Θ(log N) reversals, same as equality)")

    # 2. the sketch attempt has two-sided error -----------------------------
    trials = 300
    # false rejections: disjoint halves whose sketches happen to collide —
    # rare, but the real problem is the other direction:
    intersecting = encode_instance(["000", "001"], ["001", "111"])
    wrong_accepts = sum(
        sketchy_disjointness_attempt(intersecting, rng) for _ in range(trials)
    )
    disjoint = encode_instance(["000", "001"], ["110", "111"])
    wrong_rejects = sum(
        not sketchy_disjointness_attempt(disjoint, rng) for _ in range(trials)
    )
    print(
        f"sketch attempt: accepts intersecting halves {wrong_accepts}/{trials} "
        f"of the time (false positives ≈ always!), rejects disjoint halves "
        f"{wrong_rejects}/{trials}"
    )
    assert wrong_accepts > trials // 2  # sketches ≠ membership information

    # 3. what the paper (and hence the class layer) knows --------------------
    const, log = GrowthRate.const(), GrowthRate.log()
    for cls in (RST(const, log), CoRST(const, log, 1)):
        print(f"DISJOINT-SETS ∈ {cls}?  {cls.contains('DISJOINT-SETS').value}")
    print()
    print(
        "open, exactly as the paper's conclusion says: the Lemma 21 attack "
        "needs the paired structure v_i = v'_φ(i) of equality-type promises; "
        "disjointness has no such pairing for the composition lemma to "
        "splice across."
    )


if __name__ == "__main__":
    main()
