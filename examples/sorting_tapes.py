#!/usr/bin/env python
"""Tape merge sort: watching the Θ(log N) reversal law.

Corollary 7's upper bound rests on sorting with O(log N) head reversals
(Chen & Yap).  This script sorts growing inputs on the record-tape
runtime and prints the measured reversal counts next to the log₂ m curve
— and contrasts them with the fingerprinting machine, which needs only a
single reversal but answers a weaker (one-sided, multiset-only) question.

    python examples/sorting_tapes.py
"""

import random

from repro._util import ceil_log2
from repro.algorithms import (
    multiset_equality_fingerprint,
    sort_instance_strings,
)
from repro.problems import encode_instance, random_equal_instance

rng = random.Random(7)


def main() -> None:
    print(f"{'m':>6} | {'reversals':>9} | {'log2(m)':>7} | ratio")
    print("-" * 42)
    for log_m in range(4, 13):
        m = 2**log_m
        words = ["".join(rng.choice("01") for _ in range(16)) for _ in range(m)]
        out, tracker = sort_instance_strings(words)
        assert out == sorted(words)
        reversals = tracker.reversals
        print(
            f"{m:>6} | {reversals:>9} | {log_m:>7} | "
            f"{reversals / log_m:>5.1f}"
        )

    print()
    print("fingerprinting the same workloads (Theorem 8a):")
    print(f"{'m':>6} | {'scans':>5} | {'internal bits':>13}")
    print("-" * 32)
    for log_m in (4, 8, 12):
        m = 2**log_m
        inst = random_equal_instance(m, 16, rng)
        result = multiset_equality_fingerprint(inst, rng)
        assert result.accepted
        print(
            f"{m:>6} | {result.report.scans:>5} | "
            f"{result.report.peak_internal_bits:>13}"
        )
    print()
    print(
        "sorting pays Θ(log N) reversals for a deterministic exact answer; "
        "the fingerprint pays one reversal and O(log N) bits for a "
        "one-sided randomized answer — the paper proves both are optimal."
    )


if __name__ == "__main__":
    main()
