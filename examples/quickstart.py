#!/usr/bin/env python
"""Quickstart: the paper's main objects in two minutes.

Runs the randomized fingerprint test (Theorem 8a), the deterministic
merge-sort solver (Corollary 7), asks the complexity-class layer what the
paper says, and finally re-verifies every numbered result at small scale.

    python examples/quickstart.py
"""

import random

from repro.algorithms import (
    check_sort_deterministic,
    multiset_equality_fingerprint,
)
from repro.core import CoRST, GrowthRate, RST, ST, verify_all
from repro.problems import encode_instance, random_equal_instance

rng = random.Random(2006)  # the year of PODS'06


def main() -> None:
    # --- 1. a multiset-equality instance ---------------------------------
    words = ["0110", "1010", "0001", "1110"]
    instance = encode_instance(words, list(reversed(words)))
    print(f"instance: {instance}")

    # --- 2. Theorem 8(a): two scans, O(log N) bits, one-sided error -------
    result = multiset_equality_fingerprint(instance, rng)
    print(
        f"fingerprint: accepted={result.accepted} "
        f"(p1={result.p1}, p2={result.parameters.p2}, x={result.x})"
    )
    print(
        f"  cost: {result.report.scans} scans, "
        f"{result.report.peak_internal_bits} internal bits, "
        f"{result.report.tapes_used} tape"
    )
    assert result.accepted and result.report.scans <= 2

    # a near-miss negative is rejected (with probability ≥ 1/2; here: always
    # across a handful of repetitions)
    bad = encode_instance(words, words[:-1] + ["1111"])
    rejections = sum(
        not multiset_equality_fingerprint(bad, rng).accepted for _ in range(8)
    )
    print(f"near-miss instance rejected in {rejections}/8 independent runs")

    # --- 3. Corollary 7: deterministic, Θ(log N) reversals ----------------
    inst = random_equal_instance(64, 8, rng)
    sorted_inst = encode_instance(inst.first, sorted(inst.first))
    det = check_sort_deterministic(sorted_inst)
    print(
        f"CHECK-SORT via tape merge sort: accepted={det.accepted}, "
        f"{det.report.scans} scans for m=64 (log₂ 64 = 6 merge rounds)"
    )

    # --- 4. what the paper says, as a queryable object --------------------
    const, log = GrowthRate.const(), GrowthRate.log()
    print()
    print("the class layer answers from the paper's theorems:")
    for cls in (RST(const, log), CoRST(const, log, 1), ST(log, const, 2)):
        answer = cls.contains("MULTISET-EQUALITY")
        print(f"  MULTISET-EQUALITY ∈ {cls}?  {answer.value}")

    # --- 5. re-verify every numbered result at small scale ----------------
    print()
    print("theorem registry:")
    for check in verify_all():
        flag = "ok " if check.passed else "FAIL"
        print(f"  [{flag}] {check.result_id:20s} {check.measured}")
    assert all(c.passed for c in verify_all())


if __name__ == "__main__":
    main()
